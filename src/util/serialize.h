#ifndef CYCLESTREAM_UTIL_SERIALIZE_H_
#define CYCLESTREAM_UTIL_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_set>
#include <vector>

namespace cyclestream {

/// Binary state codec used by the checkpoint subsystem (see
/// stream/checkpoint.h for the snapshot container format and DESIGN.md §10
/// for the wire layout). Lives in util so the hash and sketch layers can
/// serialize themselves without depending on the stream library.

/// Append-only little-endian encoder for algorithm state blobs.
class StateWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) { AppendLE(v, 4); }
  void U64(std::uint64_t v) { AppendLE(v, 8); }
  void I64(std::int64_t v) { AppendLE(static_cast<std::uint64_t>(v), 8); }
  void Size(std::size_t v) { U64(static_cast<std::uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Double(double v);
  void Str(std::string_view s) {
    Size(s.size());
    buf_.append(s.data(), s.size());
  }
  void Bytes(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  /// Vectors of trivially-copyable scalars (counters, signs, flat tables).
  template <typename T>
  void Vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Size(v.size());
    if (!v.empty()) Bytes(v.data(), v.size() * sizeof(T));
  }
  void VecBool(const std::vector<bool>& v) {
    Size(v.size());
    for (bool b : v) U8(b ? 1 : 0);
  }

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void AppendLE(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  std::string buf_;
};

/// Bounded decoder. Every read is range-checked; on the first failure the
/// reader latches a fail state and all further reads return zero values, so
/// RestoreState implementations can read an entire section and check ok()
/// once. A successful restore additionally requires AtEnd().
class StateReader {
 public:
  explicit StateReader(std::string_view data) : data_(data) {}

  std::uint8_t U8() { return static_cast<std::uint8_t>(TakeLE(1)); }
  std::uint32_t U32() { return static_cast<std::uint32_t>(TakeLE(4)); }
  std::uint64_t U64() { return TakeLE(8); }
  std::int64_t I64() { return static_cast<std::int64_t>(TakeLE(8)); }
  std::size_t Size() { return static_cast<std::size_t>(U64()); }
  bool Bool() { return U8() != 0; }
  double Double();
  std::string Str();

  /// Bounded trivially-copyable vector read. `max_bytes` caps the
  /// allocation a corrupt length field can trigger.
  template <typename T>
  bool Vec(std::vector<T>* out, std::size_t max_bytes = kDefaultMaxBytes) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t n = Size();
    if (!ok_ || n > max_bytes / sizeof(T) || n * sizeof(T) > Remaining()) {
      return Fail();
    }
    out->resize(n);
    if (n > 0) CopyOut(out->data(), n * sizeof(T));
    return ok_;
  }
  bool VecBool(std::vector<bool>* out,
               std::size_t max_elems = kDefaultMaxBytes) {
    const std::size_t n = Size();
    if (!ok_ || n > max_elems || n > Remaining()) return Fail();
    out->assign(n, false);
    for (std::size_t i = 0; i < n; ++i) (*out)[i] = U8() != 0;
    return ok_;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  std::size_t Remaining() const { return data_.size() - pos_; }
  /// Latches the fail state (for semantic validation failures discovered by
  /// the caller, e.g. a config-fingerprint mismatch).
  bool Fail() {
    ok_ = false;
    return false;
  }

  static constexpr std::size_t kDefaultMaxBytes = std::size_t{1} << 33;

 private:
  std::uint64_t TakeLE(int bytes) {
    if (!ok_ || Remaining() < static_cast<std::size_t>(bytes)) {
      Fail();
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += static_cast<std::size_t>(bytes);
    return v;
  }
  void CopyOut(void* dst, std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Unordered-container helpers
// ---------------------------------------------------------------------------
//
// Unordered containers are serialized as (bucket_count, size, elements in
// iteration order) and restored by rehashing to the recorded bucket count
// and inserting in *reverse* iteration order. With libstdc++'s singly-linked
// bucket layout this reproduces the exact iteration order of the saved
// container, which matters wherever floating-point accumulation follows map
// iteration (see DESIGN.md §10). Content-equal restore would suffice for
// lookup correctness, but bit-identical resume needs order too.

template <typename Set, typename WriteElem>
void WriteUnordered(StateWriter& w, const Set& s, WriteElem write_elem) {
  w.Size(s.bucket_count());
  w.Size(s.size());
  for (const auto& e : s) write_elem(w, e);
}

template <typename Elem, typename Insert>
bool ReadUnordered(StateReader& r, std::size_t* bucket_count_out,
                   std::vector<Elem>* elems, Insert insert) {
  const std::size_t buckets = r.Size();
  const std::size_t n = r.Size();
  if (!r.ok() || n > r.Remaining()) return r.Fail();
  elems->clear();
  elems->reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    elems->push_back(insert(r));
    if (!r.ok()) return false;
  }
  *bucket_count_out = buckets;
  return true;
}

/// Rehashes `c` to `buckets` (only when it differs — rehash with the
/// current count is not guaranteed to be a no-op) and inserts `elems` back
/// to front, reproducing the saved iteration order under libstdc++.
template <typename Container, typename Elems, typename InsertOne>
void RestoreUnorderedOrder(Container& c, std::size_t buckets,
                           const Elems& elems, InsertOne insert_one) {
  c.clear();
  if (c.bucket_count() != buckets) c.rehash(buckets);
  for (auto it = elems.rbegin(); it != elems.rend(); ++it) insert_one(c, *it);
}

/// Convenience: unordered_set of uint64 keys.
template <typename Hash>
void WriteU64Set(StateWriter& w,
                 const std::unordered_set<std::uint64_t, Hash>& s) {
  WriteUnordered(w, s, [](StateWriter& sw, std::uint64_t k) { sw.U64(k); });
}
template <typename Hash>
bool ReadU64Set(StateReader& r, std::unordered_set<std::uint64_t, Hash>* s) {
  std::size_t buckets = 0;
  std::vector<std::uint64_t> elems;
  if (!ReadUnordered(r, &buckets, &elems,
                     [](StateReader& sr) { return sr.U64(); })) {
    return false;
  }
  RestoreUnorderedOrder(*s, buckets, elems,
                        [](auto& c, std::uint64_t k) { c.insert(k); });
  return true;
}

}  // namespace cyclestream

#endif  // CYCLESTREAM_UTIL_SERIALIZE_H_
