#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace cyclestream {

double QuantileSorted(const std::vector<double>& sorted, double q) {
  CHECK(!sorted.empty());
  CHECK_GE(q, 0.0);
  CHECK_LE(q, 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.median = QuantileSorted(values, 0.5);
  s.p10 = QuantileSorted(values, 0.1);
  s.p90 = QuantileSorted(values, 0.9);
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return s;
}

double RelativeError(double estimate, double truth) {
  if (truth == 0.0) return std::abs(estimate);
  return std::abs(estimate - truth) / std::abs(truth);
}

void RunningStat::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::Variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

}  // namespace cyclestream
