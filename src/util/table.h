#ifndef CYCLESTREAM_UTIL_TABLE_H_
#define CYCLESTREAM_UTIL_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace cyclestream {

/// Accumulates rows and renders them as an aligned ASCII table (the format the
/// experiment binaries print) or CSV (for downstream plotting).
///
///   Table t({"graph", "m", "err%", "space"});
///   t.AddRow({"ba-20k", Table::Num(59970), Table::Pct(0.031), ...});
///   t.Print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a title, column alignment, and a separator rule.
  void Print(std::ostream& os) const;

  /// Renders as CSV (no alignment padding).
  void PrintCsv(std::ostream& os) const;

  /// Optional title printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  std::size_t num_rows() const { return rows_.size(); }

  // Structured access (run-manifest serialization).
  const std::string& title() const { return title_; }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  // Cell formatting helpers.
  static std::string Num(double v, int precision = 3);
  static std::string Int(std::int64_t v);
  /// Formats a fraction (e.g. 0.0314) as a percentage ("3.14%").
  static std::string Pct(double fraction, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_UTIL_TABLE_H_
