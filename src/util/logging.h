#ifndef CYCLESTREAM_UTIL_LOGGING_H_
#define CYCLESTREAM_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

// Minimal leveled logging to stderr.
//
//   LOG(INFO) << "sampled " << k << " edges";
//
// The global minimum level is controlled with SetMinLogLevel; experiment
// binaries default to INFO, tests raise it to WARNING to keep output clean.

namespace cyclestream {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the global minimum level; messages below it are dropped.
void SetMinLogLevel(LogLevel level);

/// Returns the current global minimum level.
LogLevel MinLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace cyclestream

#define LOG_DEBUG                                             \
  ::cyclestream::internal::LogMessage(                        \
      ::cyclestream::LogLevel::kDebug, __FILE__, __LINE__)
#define LOG_INFO                                              \
  ::cyclestream::internal::LogMessage(                        \
      ::cyclestream::LogLevel::kInfo, __FILE__, __LINE__)
#define LOG_WARNING                                           \
  ::cyclestream::internal::LogMessage(                        \
      ::cyclestream::LogLevel::kWarning, __FILE__, __LINE__)
#define LOG_ERROR                                             \
  ::cyclestream::internal::LogMessage(                        \
      ::cyclestream::LogLevel::kError, __FILE__, __LINE__)
#define LOG(severity) LOG_##severity

#endif  // CYCLESTREAM_UTIL_LOGGING_H_
