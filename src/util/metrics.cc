#include "util/metrics.h"

#include <fstream>
#include <sstream>

#include "util/json.h"
#include "util/logging.h"
#include "util/table.h"

namespace cyclestream {

void MetricsRegistry::Inc(const std::string& name, std::int64_t delta) {
  Value& v = values_[name];
  v.kind = Value::Kind::kInt;
  v.i += delta;
}

void MetricsRegistry::SetInt(const std::string& name, std::int64_t value) {
  Value& v = values_[name];
  v.kind = Value::Kind::kInt;
  v.i = value;
}

void MetricsRegistry::Set(const std::string& name, double value) {
  Value& v = values_[name];
  v.kind = Value::Kind::kDouble;
  v.d = value;
}

void MetricsRegistry::SetStr(const std::string& name, std::string value) {
  Value& v = values_[name];
  v.kind = Value::Kind::kString;
  v.s = std::move(value);
}

void MetricsRegistry::SetTiming(const std::string& name, double seconds) {
  timings_[name] = seconds;
}

void MetricsRegistry::SetExecution(const std::string& name,
                                   std::int64_t value) {
  execution_[name] = value;
}

std::int64_t MetricsRegistry::GetInt(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return 0;
  return it->second.kind == Value::Kind::kDouble
             ? static_cast<std::int64_t>(it->second.d)
             : it->second.i;
}

double MetricsRegistry::GetDouble(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return 0.0;
  return it->second.kind == Value::Kind::kInt
             ? static_cast<double>(it->second.i)
             : it->second.d;
}

bool MetricsRegistry::Has(const std::string& name) const {
  return values_.count(name) > 0 || timings_.count(name) > 0;
}

void MetricsRegistry::Clear() {
  values_.clear();
  timings_.clear();
  execution_.clear();
}

void MetricsRegistry::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  for (const auto& [name, value] : values_) {
    w.Key(name);
    switch (value.kind) {
      case Value::Kind::kInt: w.Int(value.i); break;
      case Value::Kind::kDouble: w.Double(value.d); break;
      case Value::Kind::kString: w.String(value.s); break;
    }
  }
  w.EndObject();
}

void MetricsRegistry::WriteTimingsJson(JsonWriter& w) const {
  w.BeginObject();
  for (const auto& [name, seconds] : timings_) {
    w.Key(name);
    w.Double(seconds);
  }
  w.EndObject();
}

void MetricsRegistry::WriteExecutionJson(JsonWriter& w) const {
  w.BeginObject();
  for (const auto& [name, value] : execution_) {
    w.Key(name);
    w.Int(value);
  }
  w.EndObject();
}

std::string MetricsRegistry::DeterministicJson() const {
  std::ostringstream os;
  {
    JsonWriter w(os);
    WriteJson(w);
  }
  return os.str();
}

RunManifest::RunManifest(std::string experiment_id)
    : experiment_id_(std::move(experiment_id)) {}

void RunManifest::SetConfig(std::map<std::string, std::string> config) {
  config_ = std::move(config);
}

void RunManifest::SetThreads(int threads) { threads_ = threads; }

void RunManifest::AddQuerySection(const std::string& name,
                                  MetricsRegistry metrics) {
  query_sections_[name] = std::move(metrics);
}

void RunManifest::AddTable(const std::string& name, const Table& table) {
  StoredTable stored;
  stored.name = name;
  stored.title = table.title();
  stored.header = table.header();
  stored.rows = table.rows();
  tables_.push_back(std::move(stored));
}

void RunManifest::WriteImpl(std::ostream& os, bool deterministic_only) const {
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema");
  w.String("cyclestream.run_manifest/1");
  w.Key("experiment");
  w.String(experiment_id_);
  if (!deterministic_only) {
    // Environment stamps: meaningful provenance, but not part of the
    // thread-count-invariant payload (results must not depend on them).
    w.Key("git");
    w.String(BuildGitDescribe());
    w.Key("threads");
    w.Int(threads_);
  }
  w.Key("config");
  w.BeginObject();
  for (const auto& [name, value] : config_) {
    // Scheduling/robustness flags are execution policy, not configuration:
    // they must not change any result (a killed-and-resumed run is required
    // to match an uninterrupted one), so the deterministic payload omits
    // them alongside --threads.
    if (deterministic_only &&
        (name == "threads" || name == "checkpoint_dir" ||
         name == "checkpoint_every" || name == "resume" ||
         name == "kill_after" || name == "json_out" ||
         name == "json_det_out" || name == "sketch_backend" ||
         name == "intra_threads" ||
         // Shard execution policy (DESIGN.md §14): the worker count, the
         // launch mechanics, and fault injection are required to be
         // result-invariant — a W-shard manifest must compare equal to the
         // single-process one.
         name == "shards" || name == "epoch-edges" || name == "shard-dir" ||
         name == "launch" || name == "kill-shard" || name == "kill-edges" ||
         name == "worker-binary" ||
         // Supervision policy (DESIGN.md §15): retries, backoff, deadlines,
         // heartbeats, throttling, and drain/resume are recovery mechanics —
         // a supervised, killed, retried, drained-and-resumed run must
         // produce the same deterministic payload as a clean one.
         name == "daemon" || name == "max-retries" || name == "backoff-ms" ||
         name == "backoff-cap-ms" || name == "shard-deadline-ms" ||
         name == "wave-deadline-ms" || name == "heartbeat-edges" ||
         name == "hang-shard" || name == "hang-edges" ||
         name == "throttle-ms")) {
      continue;
    }
    w.Key(name);
    w.String(value);
  }
  w.EndObject();
  w.Key("metrics");
  metrics_.WriteJson(w);
  if (!query_sections_.empty()) {
    w.Key("queries");
    w.BeginObject();
    for (const auto& [name, metrics] : query_sections_) {
      w.Key(name);
      metrics.WriteJson(w);
    }
    w.EndObject();
  }
  w.Key("tables");
  w.BeginArray();
  for (const StoredTable& table : tables_) {
    w.BeginObject();
    w.Key("name");
    w.String(table.name);
    if (!table.title.empty()) {
      w.Key("title");
      w.String(table.title);
    }
    w.Key("header");
    w.BeginArray();
    for (const std::string& cell : table.header) w.String(cell);
    w.EndArray();
    w.Key("rows");
    w.BeginArray();
    for (const auto& row : table.rows) {
      w.BeginArray();
      for (const std::string& cell : row) w.String(cell);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  if (!deterministic_only) {
    w.Key("timings");
    metrics_.WriteTimingsJson(w);
    if (metrics_.has_execution()) {
      w.Key("execution");
      metrics_.WriteExecutionJson(w);
    }
  }
  w.EndObject();
  os << "\n";
}

void RunManifest::Write(std::ostream& os) const {
  WriteImpl(os, /*deterministic_only=*/false);
}

bool RunManifest::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    LOG(WARNING) << "cannot open manifest output file: " << path;
    return false;
  }
  Write(out);
  if (!out) {
    LOG(WARNING) << "failed writing manifest to: " << path;
    return false;
  }
  return true;
}

std::string RunManifest::DeterministicJson() const {
  std::ostringstream os;
  WriteImpl(os, /*deterministic_only=*/true);
  return os.str();
}

const char* BuildGitDescribe() {
#ifdef CYCLESTREAM_GIT_DESCRIBE
  return CYCLESTREAM_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

}  // namespace cyclestream
