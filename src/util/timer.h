#ifndef CYCLESTREAM_UTIL_TIMER_H_
#define CYCLESTREAM_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace cyclestream {

/// Wall-clock stopwatch used by the experiment harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_UTIL_TIMER_H_
