#include "util/serialize.h"

#include <cstring>

namespace cyclestream {

void StateWriter::Double(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

double StateReader::Double() {
  const std::uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string StateReader::Str() {
  const std::size_t n = Size();
  if (!ok_ || n > Remaining()) {
    Fail();
    return {};
  }
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

void StateReader::CopyOut(void* dst, std::size_t n) {
  std::memcpy(dst, data_.data() + pos_, n);
  pos_ += n;
}

}  // namespace cyclestream
