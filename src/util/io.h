#ifndef CYCLESTREAM_UTIL_IO_H_
#define CYCLESTREAM_UTIL_IO_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cyclestream::io {

/// EINTR-safe raw-I/O helpers shared by every durable writer in the tree
/// (stream/checkpoint snapshots, shard state files, epoch and daemon
/// manifests, heartbeat appends). Two rules, applied uniformly:
///
///  1. Every read/write/fsync retries EINTR and resumes partial transfers —
///     a signal (the supervisor's own SIGTERM drain handler, a profiler's
///     SIGPROF) must never turn into a torn file or a spurious I/O error.
///  2. Durable writes are atomic *and* crash-safe: tmp + write + fsync(file)
///     + rename + fsync(parent dir). Without the final directory fsync a
///     crash immediately after the rename can lose the directory entry —
///     the classic "rename is atomic but not durable" hole.

/// Test-only deterministic syscall fault injection. When installed, the
/// wrappers consult it before each raw syscall: the eintr_* budgets make
/// the next N calls fail with EINTR (no syscall issued), the short_* caps
/// truncate each transfer so the resume loops are exercised, and `fsynced`
/// records the label of every successful fsync (file paths and directory
/// paths) so durability tests can assert the parent directory was synced.
struct SyscallFaults {
  int eintr_reads = 0;
  int eintr_writes = 0;
  int eintr_fsyncs = 0;
  std::size_t short_read_cap = 0;   // 0 = off; else max bytes per read().
  std::size_t short_write_cap = 0;  // 0 = off; else max bytes per write().
  std::vector<std::string> fsynced;
};

/// Installs `faults` (nullptr clears); returns the previous pointer. Not
/// thread-safe — single-threaded tests only.
SyscallFaults* ExchangeSyscallFaults(SyscallFaults* faults);

/// Reads exactly `n` bytes unless EOF arrives first, retrying EINTR and
/// short reads. Returns false only on a real I/O error; `*got` holds the
/// byte count either way (got < n with true means EOF).
bool ReadFull(int fd, void* buf, std::size_t n, std::size_t* got);

/// Writes all `n` bytes, retrying EINTR and short writes. False on error.
bool WriteFull(int fd, const void* buf, std::size_t n);

/// fsync with EINTR retry. `label` names the target in the fault-injection
/// record (and error logs) — pass the path being synced.
bool FsyncFd(int fd, const std::string& label);

/// Directory part of `path` ("." when there is no slash).
std::string DirName(const std::string& path);

/// Opens the parent directory of `path` and fsyncs it, making a completed
/// rename into that directory durable. False with `*error` set on failure.
bool FsyncParentDir(const std::string& path, std::string* error);

/// Reads a whole file (EINTR-safe). False with `*error` set if the file
/// cannot be opened or a read fails.
bool ReadFileToString(const std::string& path, std::string* out,
                      std::string* error);

/// Durable atomic write: `path.tmp` + WriteFull + fsync(file) + rename +
/// fsync(parent). A crash at any point leaves either the old file or the
/// new one, never a torn or missing entry. False with `*error` set (and the
/// tmp file removed) on any failure.
bool WriteFileAtomic(const std::string& path, std::string_view data,
                     std::string* error);

/// O_APPEND + WriteFull, creating the file if needed — the heartbeat
/// append path. Not fsynced: heartbeats are liveness signals, not durable
/// state, and a torn tail is tolerated by the reader.
bool AppendToFile(const std::string& path, std::string_view data,
                  std::string* error);

}  // namespace cyclestream::io

#endif  // CYCLESTREAM_UTIL_IO_H_
