#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace cyclestream {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace cyclestream
