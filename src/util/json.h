#ifndef CYCLESTREAM_UTIL_JSON_H_
#define CYCLESTREAM_UTIL_JSON_H_

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace cyclestream {

/// Minimal streaming JSON writer for the run manifests. Emits pretty-printed,
/// deterministic output: keys are written in caller order, doubles use the
/// shortest round-trip representation (std::to_chars), and there is no
/// locale dependence. Usage:
///
///   JsonWriter w(os);
///   w.BeginObject();
///   w.Key("experiment"); w.String("E2");
///   w.Key("rows"); w.BeginArray(); w.Uint(3); w.EndArray();
///   w.EndObject();
///
/// Structural misuse (a value with no pending key inside an object, unclosed
/// containers at destruction) aborts via CHECK — manifests are written by
/// library code, so malformed output is a programming error.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent_step = 2)
      : os_(os), indent_step_(indent_step) {}

  ~JsonWriter() { CHECK(stack_.empty()) << "JsonWriter: unclosed container"; }

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject() {
    BeforeValue();
    os_ << '{';
    stack_.push_back(Frame{'{', false});
  }

  void EndObject() {
    CHECK(!stack_.empty() && stack_.back().kind == '{' && !key_pending_)
        << "JsonWriter: mismatched EndObject";
    const bool had_items = stack_.back().has_items;
    stack_.pop_back();
    if (had_items) NewlineIndent();
    os_ << '}';
  }

  void BeginArray() {
    BeforeValue();
    os_ << '[';
    stack_.push_back(Frame{'[', false});
  }

  void EndArray() {
    CHECK(!stack_.empty() && stack_.back().kind == '[')
        << "JsonWriter: mismatched EndArray";
    const bool had_items = stack_.back().has_items;
    stack_.pop_back();
    if (had_items) NewlineIndent();
    os_ << ']';
  }

  void Key(std::string_view key) {
    CHECK(!stack_.empty() && stack_.back().kind == '{' && !key_pending_)
        << "JsonWriter: Key outside an object";
    if (stack_.back().has_items) os_ << ',';
    stack_.back().has_items = true;
    NewlineIndent();
    os_ << '"' << Escape(key) << "\": ";
    key_pending_ = true;
  }

  void String(std::string_view value) {
    BeforeValue();
    os_ << '"' << Escape(value) << '"';
  }

  void Int(std::int64_t value) {
    BeforeValue();
    os_ << value;
  }

  void Uint(std::uint64_t value) {
    BeforeValue();
    os_ << value;
  }

  void Bool(bool value) {
    BeforeValue();
    os_ << (value ? "true" : "false");
  }

  void Null() {
    BeforeValue();
    os_ << "null";
  }

  /// Shortest round-trip representation; non-finite values (not valid
  /// JSON) are emitted as null.
  void Double(double value) {
    BeforeValue();
    if (!std::isfinite(value)) {
      os_ << "null";
      return;
    }
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    CHECK(ec == std::errc()) << "JsonWriter: double conversion failed";
    os_.write(buf, ptr - buf);
  }

  /// Escapes `"`, `\`, and control characters per RFC 8259.
  static std::string Escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

 private:
  struct Frame {
    char kind;       // '{' or '['.
    bool has_items;  // Whether a comma is needed before the next item.
  };

  void BeforeValue() {
    if (key_pending_) {
      key_pending_ = false;
      return;
    }
    if (stack_.empty()) return;  // Top-level value.
    CHECK_EQ(stack_.back().kind, '[')
        << "JsonWriter: value inside an object requires a Key first";
    if (stack_.back().has_items) os_ << ',';
    stack_.back().has_items = true;
    NewlineIndent();
  }

  void NewlineIndent() {
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size() * indent_step_; ++i) os_ << ' ';
  }

  std::ostream& os_;
  std::size_t indent_step_;
  std::vector<Frame> stack_;
  bool key_pending_ = false;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_UTIL_JSON_H_
