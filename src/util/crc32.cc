#include "util/crc32.h"

#include <array>

namespace cyclestream {
namespace {

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  return table;
}

std::uint32_t Advance(std::uint32_t crc, const unsigned char* data,
                      std::size_t size) {
  const auto& table = CrcTable();
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace

std::uint32_t Crc32(std::string_view data) {
  return Advance(0xffffffffu,
                 reinterpret_cast<const unsigned char*>(data.data()),
                 data.size()) ^
         0xffffffffu;
}

void Crc32Accumulator::Update(const void* data, std::size_t size) {
  state_ = Advance(state_, static_cast<const unsigned char*>(data), size);
}

}  // namespace cyclestream
