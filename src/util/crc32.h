#ifndef CYCLESTREAM_UTIL_CRC32_H_
#define CYCLESTREAM_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cyclestream {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320 polynomial) over `data`.
/// Guards the checkpoint snapshots (stream/checkpoint) and the binary
/// edge-stream files (graph/binary_io) against torn writes and bit rot.
std::uint32_t Crc32(std::string_view data);

/// Incremental CRC-32 for writers that stream their payload (edge2bin
/// converts arbitrarily large edge lists without buffering them):
///
///   Crc32Accumulator crc;
///   crc.Update(block, n); ...
///   header.payload_crc = crc.Final();
///
/// Final() does not consume the accumulator; further Update calls continue
/// the same running checksum.
class Crc32Accumulator {
 public:
  void Update(const void* data, std::size_t size);
  std::uint32_t Final() const { return state_ ^ 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_UTIL_CRC32_H_
