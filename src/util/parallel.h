#ifndef CYCLESTREAM_UTIL_PARALLEL_H_
#define CYCLESTREAM_UTIL_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace cyclestream {

/// Seed-deterministic parallel execution layer.
///
/// The repetition in this codebase — the Θ(log 1/δ) amplification copies of
/// `AmplifyMedian`, the repeated trials of every experiment driver — is
/// embarrassingly parallel: each unit of work is addressed by an index i,
/// derives its randomness from a seed that is a pure function of i, reads
/// only shared *const* state (a materialized `EdgeStream` / `Graph`), and
/// writes only to slot i of a preallocated result vector. Reductions over
/// the result vector happen serially on the calling thread in index order.
/// Under that contract a parallel run is bit-identical to a serial run
/// regardless of scheduling; see DESIGN.md §"Threading model".
///
/// `ThreadPool` is a fixed set of workers around one FIFO queue — no work
/// stealing, no task priorities. `ParallelFor`/`ParallelMap` run on a
/// process-wide default pool whose size is set once at startup
/// (`SetDefaultThreads`, typically from a `--threads` flag; 1 reproduces
/// serial behavior exactly, and is also what nested parallel regions fall
/// back to).

/// Fixed-size worker pool over a single FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(int num_threads = 0);

  /// Calls Shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future carrying its result. An exception
  /// thrown by `fn` is captured into the future and rethrown by `get()`.
  /// Submitting from inside a worker is safe (the task is queued, never run
  /// inline) — but blocking a worker on a future of a task in the same pool
  /// can deadlock; prefer ParallelFor/ParallelMap, which are nest-safe.
  template <typename Fn, typename R = std::invoke_result_t<Fn>>
  std::future<R> Submit(Fn fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    Enqueue([task] { (*task)(); });
    return result;
  }

  /// Runs every task already queued, then joins the workers. Idempotent;
  /// tasks submitted after Shutdown() are rejected with a CHECK failure.
  void Shutdown();

 private:
  void Enqueue(std::function<void()> fn);
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Sets the process-wide thread budget for ParallelFor/ParallelMap
/// (0 = hardware concurrency). Call once at startup, before any parallel
/// region is in flight; the default pool is rebuilt on the next use.
/// `1` makes every parallel region run inline on the calling thread.
void SetDefaultThreads(int n);

/// The current thread budget (resolves 0/unset to hardware concurrency).
int DefaultThreads();

/// Runs fn(i) for every i in [0, n), distributed over the default pool with
/// the calling thread participating. Blocks until all items finish. If any
/// fn(i) throws, the first captured exception is rethrown on the calling
/// thread after in-flight items drain (remaining indices are abandoned).
/// Nested calls (from inside a running fn) execute serially inline, so
/// nesting can never deadlock. Items must be independent: fn(i) may touch
/// shared state only for const reads, and writes must go to per-index slots.
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

/// ParallelFor that collects results: returns {fn(0), ..., fn(n-1)} in index
/// order — the identical vector a serial loop would build, regardless of
/// thread count. R must be default-constructible.
template <typename Fn,
          typename R = std::decay_t<std::invoke_result_t<Fn, std::size_t>>>
std::vector<R> ParallelMap(std::size_t n, Fn fn) {
  std::vector<R> out(n);
  ParallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace cyclestream

#endif  // CYCLESTREAM_UTIL_PARALLEL_H_
