#ifndef CYCLESTREAM_UTIL_CHECK_H_
#define CYCLESTREAM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// CHECK macros in the spirit of glog. The project builds without exceptions;
// invariant violations are programmer errors and abort with a diagnostic.
//
//   CHECK(cond) << "message";
//   CHECK_GE(space_budget, 0) << "negative budget";
//
// CHECK is always on (the algorithms here are statistical; silently corrupt
// state would be far worse than the branch cost). DCHECK compiles out in
// release builds.

namespace cyclestream::internal {

// Accumulates a failure message and aborts on destruction. The operator<<
// chain on the temporary runs before the destructor fires.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << ": CHECK failed: " << condition << " ";
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed message when the check passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace cyclestream::internal

#define CYCLESTREAM_CHECK_IMPL(cond, text)                             \
  (cond) ? (void)0                                                     \
         : (void)(::cyclestream::internal::CheckFailure(__FILE__,      \
                                                        __LINE__, text))

// The ternary-with-void trick does not allow chaining <<, so CHECK expands to
// an if/else that exposes the CheckFailure stream on the failure path.
#define CHECK(cond)                                                  \
  if (cond) {                                                        \
  } else /* NOLINT */                                                \
    ::cyclestream::internal::CheckFailure(__FILE__, __LINE__, #cond)

#define CHECK_OP(a, b, op, text)                                      \
  if ((a)op(b)) {                                                     \
  } else /* NOLINT */                                                 \
    ::cyclestream::internal::CheckFailure(__FILE__, __LINE__, text)   \
        << "(" << (a) << " vs " << (b) << ") "

#define CHECK_EQ(a, b) CHECK_OP(a, b, ==, #a " == " #b)
#define CHECK_NE(a, b) CHECK_OP(a, b, !=, #a " != " #b)
#define CHECK_LT(a, b) CHECK_OP(a, b, <, #a " < " #b)
#define CHECK_LE(a, b) CHECK_OP(a, b, <=, #a " <= " #b)
#define CHECK_GT(a, b) CHECK_OP(a, b, >, #a " > " #b)
#define CHECK_GE(a, b) CHECK_OP(a, b, >=, #a " >= " #b)

#ifdef NDEBUG
#define DCHECK(cond) \
  if (true) {        \
  } else /* NOLINT */ \
    ::cyclestream::internal::NullStream()
#define DCHECK_EQ(a, b) DCHECK((a) == (b))
#define DCHECK_LT(a, b) DCHECK((a) < (b))
#define DCHECK_LE(a, b) DCHECK((a) <= (b))
#else
#define DCHECK(cond) CHECK(cond)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#endif

#endif  // CYCLESTREAM_UTIL_CHECK_H_
