#ifndef CYCLESTREAM_UTIL_FLAGS_H_
#define CYCLESTREAM_UTIL_FLAGS_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace cyclestream {

class FlagParser;

/// Prints one `warning: unused flag --name` line per unused flag (sorted)
/// to `os`. Every experiment binary calls this before exiting so typos
/// never pass silently.
void WarnUnusedFlags(const FlagParser& flags, std::ostream& os);

/// Reads the shared `--threads N` flag (0 = hardware concurrency, 1 =
/// serial) and installs it process-wide via SetDefaultThreads; every
/// binary with repeated-trial or amplified runs calls this once at
/// startup. Returns the resolved thread count.
int ApplyThreadsFlag(FlagParser& flags);

/// Minimal command-line flag parser for the experiment binaries.
///
///   FlagParser flags(argc, argv);
///   int trials = flags.GetInt("trials", 30);
///   double eps = flags.GetDouble("epsilon", 0.1);
///   if (flags.GetBool("csv", false)) ...
///
/// Accepted syntaxes: --name=value, --name value, --bool_flag (implies true).
/// Unknown flags are collected and reported by `Unused()` so experiment
/// binaries can warn about typos.
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  std::string GetString(const std::string& name, const std::string& def);
  std::int64_t GetInt(const std::string& name, std::int64_t def);
  double GetDouble(const std::string& name, double def);
  bool GetBool(const std::string& name, bool def);

  /// GetInt restricted to non-negative values, for flags that feed size_t
  /// sinks (budgets, capacities, counts). `--reservoir -5` through GetInt
  /// plus a bare `static_cast<size_t>` wraps to an enormous capacity and
  /// silently blows the admission budget; GetCount aborts with a clear
  /// message instead.
  std::uint64_t GetCount(const std::string& name, std::uint64_t def);

  /// Flags present on the command line that were never queried. Sorted by
  /// name, so warning output is deterministic.
  std::vector<std::string> Unused() const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// All flags present on the command line (name -> raw value), for run
  /// manifests. Ordered map: iteration is deterministic.
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_UTIL_FLAGS_H_
