#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace cyclestream {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Right-align numeric-looking columns by padding on the left; headers
      // and first column stay left-aligned for readability.
      os << row[c];
      for (std::size_t i = row[c].size(); i < widths[c]; ++i) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string Table::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace cyclestream
