#include "util/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace cyclestream::io {
namespace {

SyscallFaults* g_faults = nullptr;

// Consumes one injected EINTR from `budget` if armed. Returns true when the
// caller should behave as if the syscall failed with EINTR.
bool InjectEintr(int* budget) {
  if (g_faults == nullptr || *budget <= 0) return false;
  --*budget;
  errno = EINTR;
  return true;
}

std::size_t CapTransfer(std::size_t n, std::size_t cap) {
  return cap > 0 && cap < n ? cap : n;
}

int OpenRetry(const char* path, int flags, mode_t mode = 0) {
  for (;;) {
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

// close() is NOT retried on EINTR: POSIX leaves the fd state unspecified
// and on Linux the descriptor is gone either way — retrying risks closing
// a descriptor another thread just opened.
void CloseQuiet(int fd) { ::close(fd); }

}  // namespace

SyscallFaults* ExchangeSyscallFaults(SyscallFaults* faults) {
  SyscallFaults* prev = g_faults;
  g_faults = faults;
  return prev;
}

bool ReadFull(int fd, void* buf, std::size_t n, std::size_t* got) {
  char* p = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    if (g_faults != nullptr && InjectEintr(&g_faults->eintr_reads)) continue;
    std::size_t want = n - done;
    if (g_faults != nullptr) want = CapTransfer(want, g_faults->short_read_cap);
    const ssize_t r = ::read(fd, p + done, want);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (got != nullptr) *got = done;
      return false;
    }
    if (r == 0) break;  // EOF.
    done += static_cast<std::size_t>(r);
  }
  if (got != nullptr) *got = done;
  return true;
}

bool WriteFull(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    if (g_faults != nullptr && InjectEintr(&g_faults->eintr_writes)) continue;
    std::size_t want = n - done;
    if (g_faults != nullptr) {
      want = CapTransfer(want, g_faults->short_write_cap);
    }
    const ssize_t w = ::write(fd, p + done, want);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(w);
  }
  return true;
}

bool FsyncFd(int fd, const std::string& label) {
  for (;;) {
    if (g_faults != nullptr && InjectEintr(&g_faults->eintr_fsyncs)) continue;
    if (::fsync(fd) == 0) {
      if (g_faults != nullptr) g_faults->fsynced.push_back(label);
      return true;
    }
    if (errno != EINTR) return false;
  }
}

std::string DirName(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool FsyncParentDir(const std::string& path, std::string* error) {
  const std::string dir = DirName(path);
  const int fd = OpenRetry(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open directory " + dir + " for fsync: " +
               std::strerror(errno);
    }
    return false;
  }
  const bool ok = FsyncFd(fd, dir);
  if (!ok && error != nullptr) {
    *error = "fsync failed for directory " + dir + ": " + std::strerror(errno);
  }
  CloseQuiet(fd);
  return ok;
}

bool ReadFileToString(const std::string& path, std::string* out,
                      std::string* error) {
  const int fd = OpenRetry(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string data;
  char buf[1 << 16];
  for (;;) {
    std::size_t got = 0;
    if (!ReadFull(fd, buf, sizeof(buf), &got)) {
      if (error != nullptr) *error = "I/O error reading " + path;
      CloseQuiet(fd);
      return false;
    }
    data.append(buf, got);
    if (got < sizeof(buf)) break;  // EOF.
  }
  CloseQuiet(fd);
  *out = std::move(data);
  return true;
}

bool WriteFileAtomic(const std::string& path, std::string_view data,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd =
      OpenRetry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = "cannot open " + tmp + " for writing";
    return false;
  }
  if (!WriteFull(fd, data.data(), data.size())) {
    if (error != nullptr) *error = "write failed for " + tmp;
    CloseQuiet(fd);
    std::remove(tmp.c_str());
    return false;
  }
  if (!FsyncFd(fd, tmp)) {
    if (error != nullptr) *error = "fsync failed for " + tmp;
    CloseQuiet(fd);
    std::remove(tmp.c_str());
    return false;
  }
  CloseQuiet(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "rename " + tmp + " -> " + path + " failed";
    std::remove(tmp.c_str());
    return false;
  }
  // The rename made the content visible; the directory fsync makes it
  // durable. Failing here is a durability loss, not an atomicity one — the
  // new file is in place — so report it honestly and let the caller decide.
  return FsyncParentDir(path, error);
}

bool AppendToFile(const std::string& path, std::string_view data,
                  std::string* error) {
  const int fd = OpenRetry(path.c_str(),
                           O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = "cannot open " + path + " for append";
    return false;
  }
  const bool ok = WriteFull(fd, data.data(), data.size());
  if (!ok && error != nullptr) *error = "append failed for " + path;
  CloseQuiet(fd);
  return ok;
}

}  // namespace cyclestream::io
