#include "engine/query.h"

#include <utility>

#include "baselines/bera_chakrabarti.h"
#include "baselines/cormode_jowhari.h"
#include "baselines/triest.h"
#include "core/adj_f2_counter.h"
#include "core/adj_l2_counter.h"
#include "core/arb_f2_counter.h"
#include "core/arb_three_pass.h"
#include "core/diamond_counter.h"
#include "core/random_order_triangles.h"
#include "util/check.h"

namespace cyclestream::engine {
namespace {

// Wraps a concrete algorithm (which owns its own Result() signature) into
// the type-erased query pair. The closure captures a raw pointer into the
// unique_ptr it rides alongside, so it stays valid for the query's lifetime.
template <typename Alg>
EdgeQuery WrapEdge(std::unique_ptr<Alg> alg) {
  Alg* raw = alg.get();
  return EdgeQuery{std::move(alg), [raw] { return raw->Result(); }};
}

template <typename Alg>
AdjacencyQuery WrapAdjacency(std::unique_ptr<Alg> alg) {
  Alg* raw = alg.get();
  return AdjacencyQuery{std::move(alg), [raw] { return raw->Result(); }};
}

}  // namespace

std::string_view QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRandomOrderTriangles:
      return "random-order";
    case QueryKind::kTriest:
      return "triest";
    case QueryKind::kCormodeJowhari:
      return "cormode-jowhari";
    case QueryKind::kArbF2:
      return "arb-f2";
    case QueryKind::kArbThreePass:
      return "arb-three-pass";
    case QueryKind::kBeraChakrabarti:
      return "bera-chakrabarti";
    case QueryKind::kAdjDiamond:
      return "adj-diamond";
    case QueryKind::kAdjF2:
      return "adj-f2";
    case QueryKind::kAdjL2:
      return "adj-l2";
  }
  CHECK(false) << "unreachable QueryKind " << static_cast<int>(kind);
  return "";
}

std::optional<QueryKind> ParseQueryKind(std::string_view name) {
  for (QueryKind kind :
       {QueryKind::kRandomOrderTriangles, QueryKind::kTriest,
        QueryKind::kCormodeJowhari, QueryKind::kArbF2,
        QueryKind::kArbThreePass, QueryKind::kBeraChakrabarti,
        QueryKind::kAdjDiamond, QueryKind::kAdjF2, QueryKind::kAdjL2}) {
    if (name == QueryKindName(kind)) return kind;
  }
  return std::nullopt;
}

bool IsEdgeKind(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRandomOrderTriangles:
    case QueryKind::kTriest:
    case QueryKind::kCormodeJowhari:
    case QueryKind::kArbF2:
    case QueryKind::kArbThreePass:
    case QueryKind::kBeraChakrabarti:
      return true;
    case QueryKind::kAdjDiamond:
    case QueryKind::kAdjF2:
    case QueryKind::kAdjL2:
      return false;
  }
  CHECK(false) << "unreachable QueryKind " << static_cast<int>(kind);
  return false;
}

bool IsShardMergeableKind(QueryKind kind) {
  return kind == QueryKind::kArbF2;
}

std::string_view QueryKindTarget(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRandomOrderTriangles:
    case QueryKind::kTriest:
    case QueryKind::kCormodeJowhari:
      return "triangles";
    default:
      return "c4";
  }
}

EdgeQuery MakeEdgeQuery(const QuerySpec& spec) {
  CHECK(IsEdgeKind(spec.kind))
      << "MakeEdgeQuery: '" << spec.name << "' has adjacency kind "
      << QueryKindName(spec.kind);
  switch (spec.kind) {
    case QueryKind::kRandomOrderTriangles: {
      RandomOrderTriangleCounter::Params p;
      p.base = spec.base;
      p.num_vertices = spec.num_vertices;
      p.level_rate = spec.level_rate;
      p.prefix_rate = spec.prefix_rate;
      return WrapEdge(std::make_unique<RandomOrderTriangleCounter>(p));
    }
    case QueryKind::kTriest: {
      Triest::Params p;
      p.reservoir_capacity = spec.reservoir_capacity;
      p.seed = spec.base.seed;
      return WrapEdge(std::make_unique<Triest>(p));
    }
    case QueryKind::kCormodeJowhari: {
      CormodeJowhariCounter::Params p;
      p.base = spec.base;
      p.prefix_rate = spec.prefix_rate;
      return WrapEdge(std::make_unique<CormodeJowhariCounter>(p));
    }
    case QueryKind::kArbF2: {
      ArbF2FourCycleCounter::Params p;
      p.base = spec.base;
      p.num_vertices = spec.num_vertices;
      p.sketch_backend = spec.sketch_backend;
      p.intra_shards = spec.intra_shards;
      return WrapEdge(std::make_unique<ArbF2FourCycleCounter>(p));
    }
    case QueryKind::kArbThreePass: {
      ArbThreePassFourCycleCounter::Params p;
      p.base = spec.base;
      p.num_vertices = spec.num_vertices;
      return WrapEdge(std::make_unique<ArbThreePassFourCycleCounter>(p));
    }
    case QueryKind::kBeraChakrabarti: {
      BeraChakrabartiCounter::Params p;
      p.base = spec.base;
      return WrapEdge(std::make_unique<BeraChakrabartiCounter>(p));
    }
    default:
      break;
  }
  CHECK(false) << "unreachable edge QueryKind";
  return {};
}

AdjacencyQuery MakeAdjacencyQuery(const QuerySpec& spec) {
  CHECK(!IsEdgeKind(spec.kind))
      << "MakeAdjacencyQuery: '" << spec.name << "' has edge kind "
      << QueryKindName(spec.kind);
  switch (spec.kind) {
    case QueryKind::kAdjDiamond: {
      DiamondFourCycleCounter::Params p;
      p.base = spec.base;
      p.num_vertices = spec.num_vertices;
      return WrapAdjacency(std::make_unique<DiamondFourCycleCounter>(p));
    }
    case QueryKind::kAdjF2: {
      AdjF2FourCycleCounter::Params p;
      p.base = spec.base;
      p.num_vertices = spec.num_vertices;
      return WrapAdjacency(std::make_unique<AdjF2FourCycleCounter>(p));
    }
    case QueryKind::kAdjL2: {
      AdjL2FourCycleCounter::Params p;
      p.base = spec.base;
      p.num_vertices = spec.num_vertices;
      return WrapAdjacency(std::make_unique<AdjL2FourCycleCounter>(p));
    }
    default:
      break;
  }
  CHECK(false) << "unreachable adjacency QueryKind";
  return {};
}

}  // namespace cyclestream::engine
