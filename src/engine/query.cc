#include "engine/query.h"

#include <utility>

#include "baselines/bera_chakrabarti.h"
#include "baselines/cormode_jowhari.h"
#include "baselines/triest.h"
#include "core/adj_f2_counter.h"
#include "core/adj_l2_counter.h"
#include "core/arb_f2_counter.h"
#include "core/arb_three_pass.h"
#include "core/diamond_counter.h"
#include "core/random_order_triangles.h"
#include "core/turnstile_f2.h"
#include "stream/window/window.h"
#include "util/check.h"

namespace cyclestream::engine {
namespace {

// Wraps a concrete algorithm (which owns its own Result() signature) into
// the type-erased query pair. The closure captures a raw pointer into the
// unique_ptr it rides alongside, so it stays valid for the query's lifetime.
template <typename Alg>
EdgeQuery WrapEdge(std::unique_ptr<Alg> alg) {
  Alg* raw = alg.get();
  return EdgeQuery{std::move(alg), [raw] { return raw->Result(); }};
}

template <typename Alg>
AdjacencyQuery WrapAdjacency(std::unique_ptr<Alg> alg) {
  Alg* raw = alg.get();
  return AdjacencyQuery{std::move(alg), [raw] { return raw->Result(); }};
}

}  // namespace

std::string_view QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRandomOrderTriangles:
      return "random-order";
    case QueryKind::kTriest:
      return "triest";
    case QueryKind::kCormodeJowhari:
      return "cormode-jowhari";
    case QueryKind::kArbF2:
      return "arb-f2";
    case QueryKind::kArbThreePass:
      return "arb-three-pass";
    case QueryKind::kBeraChakrabarti:
      return "bera-chakrabarti";
    case QueryKind::kAdjDiamond:
      return "adj-diamond";
    case QueryKind::kAdjF2:
      return "adj-f2";
    case QueryKind::kAdjL2:
      return "adj-l2";
    case QueryKind::kTurnstileF2Triangle:
      return "turnstile-f2-triangle";
    case QueryKind::kTurnstileF2C4:
      return "turnstile-f2-c4";
  }
  CHECK(false) << "unreachable QueryKind " << static_cast<int>(kind);
  return "";
}

std::optional<QueryKind> ParseQueryKind(std::string_view name) {
  for (QueryKind kind :
       {QueryKind::kRandomOrderTriangles, QueryKind::kTriest,
        QueryKind::kCormodeJowhari, QueryKind::kArbF2,
        QueryKind::kArbThreePass, QueryKind::kBeraChakrabarti,
        QueryKind::kAdjDiamond, QueryKind::kAdjF2, QueryKind::kAdjL2,
        QueryKind::kTurnstileF2Triangle, QueryKind::kTurnstileF2C4}) {
    if (name == QueryKindName(kind)) return kind;
  }
  return std::nullopt;
}

bool IsEdgeKind(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRandomOrderTriangles:
    case QueryKind::kTriest:
    case QueryKind::kCormodeJowhari:
    case QueryKind::kArbF2:
    case QueryKind::kArbThreePass:
    case QueryKind::kBeraChakrabarti:
      return true;
    case QueryKind::kAdjDiamond:
    case QueryKind::kAdjF2:
    case QueryKind::kAdjL2:
    case QueryKind::kTurnstileF2Triangle:
    case QueryKind::kTurnstileF2C4:
      return false;
  }
  CHECK(false) << "unreachable QueryKind " << static_cast<int>(kind);
  return false;
}

bool IsTurnstileKind(QueryKind kind) {
  return kind == QueryKind::kTurnstileF2Triangle ||
         kind == QueryKind::kTurnstileF2C4;
}

bool IsShardMergeableKind(QueryKind kind) {
  return kind == QueryKind::kArbF2;
}

std::string_view QueryKindTarget(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRandomOrderTriangles:
    case QueryKind::kTriest:
    case QueryKind::kCormodeJowhari:
    case QueryKind::kTurnstileF2Triangle:
      return "triangles";
    default:
      return "c4";
  }
}

bool ValidateSpecWindowing(const QuerySpec& spec, std::string* error) {
  auto fail = [&](std::string message) {
    if (error != nullptr) {
      *error = "query '" + spec.name + "': " + std::move(message);
    }
    return false;
  };
  const bool windowed = spec.window_edges > 0;
  const bool decayed = spec.decay_epoch_edges > 0;
  if (!windowed && !decayed) {
    if (spec.decay_log2 != 0) {
      return fail("decay_log2 has no effect without decay_epoch > 0");
    }
    return true;
  }
  if (!IsTurnstileKind(spec.kind)) {
    return fail("window/decay require a turnstile kind, not " +
                std::string(QueryKindName(spec.kind)));
  }
  if (windowed && decayed) {
    return fail("window and decay are mutually exclusive");
  }
  if (windowed) {
    if (spec.window_buckets == 0) {
      return fail("window_buckets must be >= 1");
    }
    if (spec.window_edges % spec.window_buckets != 0) {
      return fail("window (" + std::to_string(spec.window_edges) +
                  ") must be a multiple of window_buckets (" +
                  std::to_string(spec.window_buckets) + ")");
    }
    if (spec.decay_log2 != 0) {
      return fail("decay_log2 has no effect without decay_epoch > 0");
    }
  } else {
    if (spec.decay_log2 < 1 || spec.decay_log2 > 32) {
      return fail("decay_log2 must be in [1, 32] (exact power-of-two decay "
                  "factors), got " + std::to_string(spec.decay_log2));
    }
  }
  return true;
}

EdgeQuery MakeEdgeQuery(const QuerySpec& spec) {
  CHECK(IsEdgeKind(spec.kind))
      << "MakeEdgeQuery: '" << spec.name << "' has adjacency kind "
      << QueryKindName(spec.kind);
  switch (spec.kind) {
    case QueryKind::kRandomOrderTriangles: {
      RandomOrderTriangleCounter::Params p;
      p.base = spec.base;
      p.num_vertices = spec.num_vertices;
      p.level_rate = spec.level_rate;
      p.prefix_rate = spec.prefix_rate;
      return WrapEdge(std::make_unique<RandomOrderTriangleCounter>(p));
    }
    case QueryKind::kTriest: {
      Triest::Params p;
      p.reservoir_capacity = spec.reservoir_capacity;
      p.seed = spec.base.seed;
      return WrapEdge(std::make_unique<Triest>(p));
    }
    case QueryKind::kCormodeJowhari: {
      CormodeJowhariCounter::Params p;
      p.base = spec.base;
      p.prefix_rate = spec.prefix_rate;
      return WrapEdge(std::make_unique<CormodeJowhariCounter>(p));
    }
    case QueryKind::kArbF2: {
      ArbF2FourCycleCounter::Params p;
      p.base = spec.base;
      p.num_vertices = spec.num_vertices;
      p.sketch_backend = spec.sketch_backend;
      p.intra_shards = spec.intra_shards;
      return WrapEdge(std::make_unique<ArbF2FourCycleCounter>(p));
    }
    case QueryKind::kArbThreePass: {
      ArbThreePassFourCycleCounter::Params p;
      p.base = spec.base;
      p.num_vertices = spec.num_vertices;
      return WrapEdge(std::make_unique<ArbThreePassFourCycleCounter>(p));
    }
    case QueryKind::kBeraChakrabarti: {
      BeraChakrabartiCounter::Params p;
      p.base = spec.base;
      return WrapEdge(std::make_unique<BeraChakrabartiCounter>(p));
    }
    default:
      break;
  }
  CHECK(false) << "unreachable edge QueryKind";
  return {};
}

AdjacencyQuery MakeAdjacencyQuery(const QuerySpec& spec) {
  CHECK(!IsEdgeKind(spec.kind))
      << "MakeAdjacencyQuery: '" << spec.name << "' has edge kind "
      << QueryKindName(spec.kind);
  switch (spec.kind) {
    case QueryKind::kAdjDiamond: {
      DiamondFourCycleCounter::Params p;
      p.base = spec.base;
      p.num_vertices = spec.num_vertices;
      return WrapAdjacency(std::make_unique<DiamondFourCycleCounter>(p));
    }
    case QueryKind::kAdjF2: {
      AdjF2FourCycleCounter::Params p;
      p.base = spec.base;
      p.num_vertices = spec.num_vertices;
      return WrapAdjacency(std::make_unique<AdjF2FourCycleCounter>(p));
    }
    case QueryKind::kAdjL2: {
      AdjL2FourCycleCounter::Params p;
      p.base = spec.base;
      p.num_vertices = spec.num_vertices;
      return WrapAdjacency(std::make_unique<AdjL2FourCycleCounter>(p));
    }
    default:
      break;
  }
  CHECK(false) << "unreachable adjacency QueryKind";
  return {};
}

TurnstileQuery MakeTurnstileQuery(const QuerySpec& spec) {
  CHECK(IsTurnstileKind(spec.kind))
      << "MakeTurnstileQuery: '" << spec.name << "' has non-turnstile kind "
      << QueryKindName(spec.kind);
  std::string windowing_error;
  CHECK(ValidateSpecWindowing(spec, &windowing_error)) << windowing_error;

  // The factory builds a fresh base estimator with the spec's exact
  // result-affecting configuration — called once for an unwindowed query,
  // once per bucket (plus once per Result()) for a windowed one.
  TurnstileAlgorithmFactory factory;
  switch (spec.kind) {
    case QueryKind::kTurnstileF2Triangle: {
      TurnstileF2TriangleCounter::Params p;
      p.base = spec.base;
      p.num_vertices = spec.num_vertices;
      p.sketch_backend = spec.sketch_backend;
      p.intra_shards = spec.intra_shards;
      factory = [p] { return std::make_unique<TurnstileF2TriangleCounter>(p); };
      break;
    }
    case QueryKind::kTurnstileF2C4: {
      TurnstileF2FourCycleCounter::Params p;
      p.base = spec.base;
      p.num_vertices = spec.num_vertices;
      p.sketch_backend = spec.sketch_backend;
      p.intra_shards = spec.intra_shards;
      factory = [p] { return std::make_unique<TurnstileF2FourCycleCounter>(p); };
      break;
    }
    default:
      CHECK(false) << "unreachable turnstile QueryKind";
  }

  std::unique_ptr<TurnstileStreamAlgorithm> alg;
  if (spec.window_edges > 0) {
    std::unique_ptr<TurnstileStreamAlgorithm> probe = factory();
    alg = std::make_unique<SlidingWindowAlgorithm>(
        factory, probe->CheckpointId(), spec.window_edges,
        spec.window_buckets);
  } else if (spec.decay_epoch_edges > 0) {
    alg = std::make_unique<DecayAlgorithm>(factory(), spec.decay_epoch_edges,
                                           spec.decay_log2);
  } else {
    alg = factory();
  }
  TurnstileStreamAlgorithm* raw = alg.get();
  return TurnstileQuery{std::move(alg), [raw] { return raw->Result(); }};
}

}  // namespace cyclestream::engine
