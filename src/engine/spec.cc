#include "engine/spec.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream::engine {
namespace {

// Strict numeric value parsers. The historical parser went through
// std::stoull/std::stod, which (a) silently ignores trailing garbage
// ("seed=5x" parsed as 5) and (b) wraps negatives through the unsigned
// conversion ("seed=-1" became 2^64-1, and "budget=-1" a budget large
// enough to swallow any admission cap). Every parser here requires the
// whole token to be consumed, and the unsigned ones reject a leading sign
// outright.

bool ParseU64Strict(const std::string& value, std::uint64_t* out) {
  if (value.empty() || value[0] == '-' || value[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (errno == ERANGE || end == value.c_str() || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool ParseDoubleStrict(const std::string& value, double* out) {
  if (value.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (errno == ERANGE || end == value.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

std::string LineError(const std::string& label, std::size_t lineno,
                      const std::string& message) {
  return label + ":" + std::to_string(lineno) + ": " + message;
}

// Emits a double with enough digits to re-parse to the identical bits
// (max_digits10 == 17 for IEEE double).
std::string ExactDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

bool ParseSpecStream(std::istream& in, const std::string& label,
                     const QuerySpec& defaults, std::vector<QuerySpec>* specs,
                     std::string* error) {
  std::string line;
  std::size_t lineno = 0;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = LineError(label, lineno, message);
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string token;
    QuerySpec spec = defaults;
    bool any = false, have_kind = false;
    while (ls >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        return fail("token '" + token + "' is not key=value");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      any = true;
      auto bad_unsigned = [&] {
        return fail("key '" + key +
                    "' expects a non-negative integer, got '" + value + "'");
      };
      auto bad_number = [&] {
        return fail("key '" + key + "' expects a number, got '" + value +
                    "'");
      };
      std::uint64_t u = 0;
      double d = 0.0;
      if (key == "name") {
        if (value.empty()) return fail("key 'name' expects a value");
        spec.name = value;
      } else if (key == "kind") {
        const auto kind = ParseQueryKind(value);
        if (!kind.has_value()) {
          return fail("unknown query kind '" + value + "'");
        }
        spec.kind = *kind;
        have_kind = true;
      } else if (key == "seed") {
        if (!ParseU64Strict(value, &u)) return bad_unsigned();
        spec.base.seed = u;
      } else if (key == "budget") {
        if (!ParseU64Strict(value, &u)) return bad_unsigned();
        spec.space_budget_words = static_cast<std::size_t>(u);
      } else if (key == "epsilon") {
        if (!ParseDoubleStrict(value, &d)) return bad_number();
        spec.base.epsilon = d;
      } else if (key == "c") {
        if (!ParseDoubleStrict(value, &d)) return bad_number();
        spec.base.c = d;
      } else if (key == "t_guess") {
        if (!ParseDoubleStrict(value, &d)) return bad_number();
        spec.base.t_guess = d;
      } else if (key == "level_rate") {
        if (!ParseDoubleStrict(value, &d)) return bad_number();
        spec.level_rate = d;
      } else if (key == "prefix_rate") {
        if (!ParseDoubleStrict(value, &d)) return bad_number();
        spec.prefix_rate = d;
      } else if (key == "reservoir") {
        if (!ParseU64Strict(value, &u)) return bad_unsigned();
        spec.reservoir_capacity = static_cast<std::size_t>(u);
      } else if (key == "num_vertices") {
        if (!ParseU64Strict(value, &u) || u > kInvalidVertex) {
          return bad_unsigned();
        }
        spec.num_vertices = static_cast<VertexId>(u);
      } else if (key == "window") {
        if (!ParseU64Strict(value, &u)) return bad_unsigned();
        spec.window_edges = u;
      } else if (key == "window_buckets") {
        if (!ParseU64Strict(value, &u) || u == 0 || u > 4096) {
          return fail("key 'window_buckets' expects an integer in [1, 4096], "
                      "got '" + value + "'");
        }
        spec.window_buckets = u;
      } else if (key == "decay_epoch") {
        if (!ParseU64Strict(value, &u)) return bad_unsigned();
        spec.decay_epoch_edges = u;
      } else if (key == "decay_log2") {
        if (!ParseU64Strict(value, &u) || u > 32) {
          return fail("key 'decay_log2' expects an integer in [0, 32], "
                      "got '" + value + "'");
        }
        spec.decay_log2 = static_cast<std::uint32_t>(u);
      } else if (key == "sketch_backend") {
        const auto backend = ParseSketchBackend(value);
        if (!backend.has_value()) {
          return fail("sketch_backend must be scalar or block, got '" +
                      value + "'");
        }
        spec.sketch_backend = *backend;
      } else if (key == "intra_shards") {
        if (!ParseU64Strict(value, &u) || u == 0 || u > 4096) {
          return fail("key 'intra_shards' expects an integer in [1, 4096], "
                      "got '" + value + "'");
        }
        spec.intra_shards = static_cast<int>(u);
      } else {
        return fail("unknown key '" + key + "'");
      }
    }
    if (!any) continue;  // Blank or comment-only line.
    if (spec.name.empty() || !have_kind) {
      return fail("query spec needs name=... and kind=...");
    }
    std::string windowing_error;
    if (!ValidateSpecWindowing(spec, &windowing_error)) {
      return fail(windowing_error);
    }
    specs->push_back(std::move(spec));
  }
  return true;
}

bool ParseSpecFile(const std::string& path, const QuerySpec& defaults,
                   std::vector<QuerySpec>* specs, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open spec file " + path;
    return false;
  }
  return ParseSpecStream(in, path, defaults, specs, error);
}

std::string FormatSpecLine(const QuerySpec& spec) {
  CHECK(spec.name.find_first_of(" \t#=") == std::string::npos)
      << "query name '" << spec.name
      << "' is not representable in the spec format";
  std::string out;
  out += "name=" + spec.name;
  out += " kind=" + std::string(QueryKindName(spec.kind));
  out += " seed=" + std::to_string(spec.base.seed);
  out += " budget=" + std::to_string(spec.space_budget_words);
  out += " epsilon=" + ExactDouble(spec.base.epsilon);
  out += " c=" + ExactDouble(spec.base.c);
  out += " t_guess=" + ExactDouble(spec.base.t_guess);
  out += " level_rate=" + ExactDouble(spec.level_rate);
  out += " prefix_rate=" + ExactDouble(spec.prefix_rate);
  out += " reservoir=" + std::to_string(spec.reservoir_capacity);
  out += " num_vertices=" + std::to_string(spec.num_vertices);
  out += " window=" + std::to_string(spec.window_edges);
  out += " window_buckets=" + std::to_string(spec.window_buckets);
  out += " decay_epoch=" + std::to_string(spec.decay_epoch_edges);
  out += " decay_log2=" + std::to_string(spec.decay_log2);
  out += " sketch_backend=" + std::string(SketchBackendName(spec.sketch_backend));
  out += " intra_shards=" + std::to_string(spec.intra_shards);
  return out;
}

bool WriteSpecFile(const std::string& path,
                   const std::vector<QuerySpec>& specs, std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open spec file " + path;
    return false;
  }
  out << "# resolved query specs (engine/spec.cc); parsed by serve and the\n"
         "# shard workers.\n";
  for (const QuerySpec& spec : specs) out << FormatSpecLine(spec) << "\n";
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failed for spec file " + path;
    return false;
  }
  return true;
}

std::uint64_t FingerprintSpecs(const std::vector<QuerySpec>& specs) {
  StateWriter w;
  w.Size(specs.size());
  for (const QuerySpec& spec : specs) {
    w.Str(spec.name);
    w.Str(QueryKindName(spec.kind));
    w.U64(spec.base.seed);
    w.Double(spec.base.epsilon);
    w.Double(spec.base.c);
    w.Double(spec.base.t_guess);
    w.Double(spec.level_rate);
    w.Double(spec.prefix_rate);
    w.Size(spec.reservoir_capacity);
    w.Size(spec.space_budget_words);
    w.U32(spec.num_vertices);
    w.U64(spec.window_edges);
    w.U64(spec.window_buckets);
    w.U64(spec.decay_epoch_edges);
    w.U32(spec.decay_log2);
  }
  const std::string& bytes = w.str();
  std::uint64_t h = Mix64(0x53504543ULL ^ bytes.size());  // "SPEC"
  for (char c : bytes) {
    h = Mix64(h ^ static_cast<unsigned char>(c));
  }
  return h;
}

}  // namespace cyclestream::engine
