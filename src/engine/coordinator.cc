#include "engine/coordinator.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <numeric>
#include <utility>

#include "engine/spec.h"
#include "stream/checkpoint.h"
#include "stream/driver.h"
#include "util/check.h"
#include "util/io.h"
#include "util/logging.h"
#include "util/serialize.h"

namespace cyclestream::engine {
namespace {

std::string DirName(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

// The broker's audit cross-check, applied to a merged query (the merged
// state IS the single-process end-of-run state, so the same invariant must
// hold). Returns true iff an audit ran.
bool MaybeAuditMerged(const EdgeStreamAlgorithm& alg) {
  if (!SpaceAuditEnabled()) return false;
  const SpaceTracker* tracker = alg.space_tracker();
  const std::size_t walked = alg.AuditSpace();
  if (tracker == nullptr || walked == kNoSpaceAudit) return false;
  CHECK_EQ(walked, tracker->Current())
      << "space audit failed on merged shard state";
  return true;
}

// Runs one worker in-process; returns completed.
bool LaunchInProcess(const WorkerLaunch& launch) {
  std::string error;
  const ShardWorkerOutcome outcome =
      RunShardWorker(launch.config, launch.state_path, &error);
  if (!outcome.completed && !error.empty()) {
    LOG(WARNING) << "in-process worker " << launch.config.worker_id
                 << " failed: " << error;
  }
  return outcome.completed;
}

// Restores one query's blob into a fresh instance of `spec`.
EdgeQuery RestoreQuery(const QuerySpec& spec, const std::string& blob) {
  EdgeQuery q = MakeEdgeQuery(spec);
  StateReader r(blob);
  CHECK(q.algorithm->RestoreState(r) && r.AtEnd())
      << "validated shard state rejected by RestoreState for query '"
      << spec.name << "' (codec bug)";
  return q;
}

}  // namespace

std::string ResolveWorkerBinary(const std::string& configured) {
  if (!configured.empty()) return configured;
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  CHECK_GT(n, 0) << "cannot resolve /proc/self/exe for the worker binary";
  return std::string(buf, static_cast<std::size_t>(n));
}

std::vector<std::string> BuildWorkerArgv(const std::string& binary,
                                         const std::string& stream_path,
                                         const std::string& spec_path,
                                         const WorkerLaunch& launch) {
  const ShardWorkerConfig& c = launch.config;
  std::vector<std::string> argv = {
      binary,
      "shard-worker",
      "--stream",
      stream_path,
      "--spec-file",
      spec_path,
      "--worker",
      std::to_string(c.worker_id),
      "--workers",
      std::to_string(c.num_workers),
      "--ranges",
      FormatShardRanges(c.ranges),
      "--state-out",
      launch.state_path,
      "--block-edges",
      std::to_string(c.block_edges),
  };
  if (c.epoch_edges > 0 && !c.checkpoint_path.empty()) {
    argv.push_back("--epoch-edges");
    argv.push_back(std::to_string(c.epoch_edges));
    argv.push_back("--checkpoint");
    argv.push_back(c.checkpoint_path);
  }
  if (c.resume) argv.push_back("--resume");
  if (c.die_after_edges != kNoDeath) {
    argv.push_back("--die-after-edges");
    argv.push_back(std::to_string(c.die_after_edges));
  }
  if (c.hang_after_edges != kNoDeath) {
    argv.push_back("--hang-after-edges");
    argv.push_back(std::to_string(c.hang_after_edges));
  }
  if (c.heartbeat_edges > 0 && !c.heartbeat_path.empty()) {
    argv.push_back("--heartbeat-edges");
    argv.push_back(std::to_string(c.heartbeat_edges));
    argv.push_back("--heartbeat");
    argv.push_back(c.heartbeat_path);
  }
  if (c.throttle_ms_per_block > 0) {
    argv.push_back("--throttle-ms");
    argv.push_back(std::to_string(c.throttle_ms_per_block));
  }
  return argv;
}

pid_t SpawnShardWorker(const std::vector<std::string>& argv) {
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const std::string& a : argv) raw.push_back(const_cast<char*>(a.c_str()));
  raw.push_back(nullptr);
  const pid_t pid = fork();
  CHECK_GE(pid, 0) << "fork failed for shard worker";
  if (pid == 0) {
    execv(raw[0], raw.data());
    _exit(127);  // exec failed; the coordinator treats it as a dead worker.
  }
  return pid;
}

namespace {

bool WaitWorker(pid_t pid, std::uint32_t worker_id) {
  int status = 0;
  pid_t got;
  do {
    got = waitpid(pid, &status, 0);
  } while (got < 0 && errno == EINTR);
  CHECK_EQ(got, pid) << "waitpid failed for shard worker";
  const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (!ok) {
    LOG(WARNING) << "worker " << worker_id << ": "
                 << DescribeWaitStatus(status);
  }
  return ok;
}

}  // namespace

bool CollectWorkerState(const WorkerLaunch& launch,
                        const std::vector<QuerySpec>& wave_specs,
                        ShardState* state) {
  const ShardWorkerConfig& c = launch.config;
  std::string error;
  if (!LoadShardState(launch.state_path, state, &error)) {
    LOG(WARNING) << "worker " << c.worker_id << ": state file rejected ("
                 << error << ")";
    return false;
  }
  const ShardHeader& h = state->header;
  if (h.worker_id != c.worker_id || h.num_workers != c.num_workers ||
      h.stream_fingerprint != c.stream_fingerprint ||
      h.stream_length != c.edges.size() ||
      h.spec_fingerprint != c.spec_fingerprint || h.ranges != c.ranges ||
      h.edges_done != TotalRangeEdges(c.ranges) ||
      state->query_states.size() != wave_specs.size()) {
    LOG(WARNING) << "worker " << c.worker_id
                 << ": state header does not match its launch (stale file?)";
    return false;
  }
  for (std::size_t i = 0; i < wave_specs.size(); ++i) {
    if (state->query_states[i].first != wave_specs[i].name) {
      LOG(WARNING) << "worker " << c.worker_id
                   << ": query order mismatch in state file";
      return false;
    }
  }
  return true;
}

std::vector<EdgeQuery> MergeShardStates(
    const std::vector<QuerySpec>& wave_specs,
    const std::vector<ShardState>& states, std::vector<EdgeQuery> base) {
  std::vector<EdgeQuery> merged = std::move(base);
  const bool seeded = !merged.empty();
  CHECK(seeded || !states.empty());
  for (std::size_t qi = 0; qi < wave_specs.size(); ++qi) {
    std::size_t first = 0;
    if (!seeded) {
      if (qi == 0) merged.reserve(wave_specs.size());
      if (merged.size() <= qi) {
        merged.push_back(
            RestoreQuery(wave_specs[qi], states[0].query_states[qi].second));
      }
      first = 1;
    }
    for (std::size_t w = first; w < states.size(); ++w) {
      EdgeQuery scratch =
          RestoreQuery(wave_specs[qi], states[w].query_states[qi].second);
      CHECK(merged[qi].algorithm->MergeFrom(*scratch.algorithm))
          << "MergeFrom rejected a validated shard state for query '"
          << wave_specs[qi].name << "'";
    }
  }
  return merged;
}

namespace {

// Runs a set of worker launches to completion: first attempt (possibly
// with an injected kill), then one recovery relaunch — resuming from the
// worker's checkpoint — for any worker that died or left an unusable state
// file. Fills `states` in worker order.
void RunWorkersToCompletion(std::vector<WorkerLaunch>& launches,
                            const std::vector<QuerySpec>& wave_specs,
                            const ShardPlanOptions& options,
                            const std::string& spec_path,
                            std::vector<ShardState>* states,
                            std::uint64_t* launched, std::uint64_t* recovered) {
  const std::size_t w = launches.size();
  states->assign(w, ShardState{});
  std::vector<char> done(w, 0);

  auto run_round = [&](bool recovery) {
    std::vector<pid_t> pids(w, -1);
    std::vector<char> attempted(w, 0);
    for (std::size_t i = 0; i < w; ++i) {
      if (done[i]) continue;
      if (recovery) {
        // Recovery: resume from the shard's own checkpoint, fault cleared.
        launches[i].config.resume = !launches[i].config.checkpoint_path.empty();
        launches[i].config.die_after_edges = kNoDeath;
        ++*recovered;
      }
      attempted[i] = 1;
      ++*launched;
      if (options.launch == ShardLaunch::kInProcess) {
        LaunchInProcess(launches[i]);
      } else {
        pids[i] = SpawnShardWorker(
            BuildWorkerArgv(ResolveWorkerBinary(options.worker_binary),
                            options.stream_path, spec_path, launches[i]));
      }
    }
    for (std::size_t i = 0; i < w; ++i) {
      if (!attempted[i]) continue;
      if (pids[i] >= 0) WaitWorker(pids[i], launches[i].config.worker_id);
      // Exit status aside, the state file is the ground truth: a worker
      // only counts as finished if it left a fully valid state.
      if (CollectWorkerState(launches[i], wave_specs, &(*states)[i])) {
        done[i] = 1;
      }
    }
  };

  run_round(/*recovery=*/false);
  if (std::find(done.begin(), done.end(), 0) != done.end()) {
    run_round(/*recovery=*/true);
  }
  for (std::size_t i = 0; i < w; ++i) {
    CHECK(done[i]) << "shard worker " << i
                   << " failed twice (initial + recovery); giving up";
  }
}

}  // namespace

void FinalizeShardWave(const std::vector<std::size_t>& admitted, int wave,
                       std::size_t stream_length,
                       std::vector<EdgeQuery>& merged,
                       std::vector<QueryOutcome>& outcomes,
                       EngineStats& stats) {
  // One logical pass (mergeable kinds are single-pass, CHECKed in the
  // worker), read once across the workers collectively — the same counters
  // the broker's wave loop would produce.
  ++stats.physical_passes;
  stats.source_items_read += stream_length;
  stats.items_delivered +=
      static_cast<std::uint64_t>(stream_length) * admitted.size();

  ExternalRunStats credit;
  for (std::size_t i = 0; i < admitted.size(); ++i) {
    QueryOutcome& out = outcomes[admitted[i]];
    if (MaybeAuditMerged(*merged[i].algorithm)) ++credit.audits_passed;
    out.admission = AdmissionOutcome::kAdmitted;
    out.wave = wave;
    out.estimate = merged[i].result();
    out.passes = merged[i].algorithm->NumPasses();
    out.items_delivered = stream_length;
    if (const SpaceTracker* tracker = merged[i].algorithm->space_tracker()) {
      out.space_peak_components = tracker->PeakComponents();
    }
    ++credit.runs;
    credit.passes += static_cast<std::uint64_t>(out.passes);
    credit.edges_processed += stream_length;
  }
  AddExternalRunStats(credit);
}

void CheckShardableSpecs(const std::vector<QuerySpec>& specs) {
  CHECK(!specs.empty()) << "sharded batch needs at least one query";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    CHECK(IsEdgeKind(specs[i].kind) && IsShardMergeableKind(specs[i].kind))
        << "query '" << specs[i].name << "' has kind "
        << QueryKindName(specs[i].kind)
        << ", which is not shard-mergeable (see IsShardMergeableKind)";
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      CHECK(specs[i].name != specs[j].name)
          << "duplicate query name '" << specs[i].name << "'";
    }
  }
}

namespace {

// Splits a flat list of leftover ranges into `num_workers` contiguous
// assignments balanced by edge count (the same split PartitionStream uses).
// Workers with nothing left get one empty range so every assignment is
// representable on a command line.
std::vector<std::vector<ShardRange>> SplitRangesAcross(
    const std::vector<ShardRange>& flat, int num_workers) {
  const std::vector<ShardRange> targets =
      PartitionStream(TotalRangeEdges(flat), num_workers);
  std::vector<std::vector<ShardRange>> out(
      static_cast<std::size_t>(num_workers));
  std::size_t ri = 0;
  std::uint64_t used = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t need = targets[i].size();
    while (need > 0) {
      const std::uint64_t avail = flat[ri].size() - used;
      const std::uint64_t take = std::min(need, avail);
      out[i].push_back(
          {flat[ri].begin + used, flat[ri].begin + used + take});
      used += take;
      need -= take;
      if (used == flat[ri].size()) {
        ++ri;
        used = 0;
      }
    }
    if (out[i].empty()) out[i].push_back({0, 0});
  }
  return out;
}

}  // namespace

ShardBatchResult RunShardedBatch(const std::vector<QuerySpec>& specs,
                                 std::span<const Edge> edges,
                                 const ShardPlanOptions& options) {
  CheckShardableSpecs(specs);
  IgnoreSigpipe();
  CHECK_GT(options.num_workers, 0);
  CHECK(!options.shard_dir.empty())
      << "ShardPlanOptions::shard_dir is required (state files + "
         "checkpoints live there)";
  if (options.launch == ShardLaunch::kSubprocess) {
    CHECK(!options.stream_path.empty())
        << "subprocess workers need --stream (a .bin path)";
  }

  ShardBatchResult result;
  result.outcomes.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    result.outcomes[i].spec = specs[i];
  }
  EngineStats& stats = result.stats;

  const std::uint64_t stream_fp = FingerprintEdgeStream(edges);

  // The broker's exact admission loop (RunBatch): identical offer sequence
  // against an identical controller ⇒ identical waves, outcomes, and
  // budget accounting.
  AdmissionController controller(options.budget);
  std::vector<char> queued_before(specs.size(), 0);
  std::vector<std::size_t> pending(specs.size());
  std::iota(pending.begin(), pending.end(), std::size_t{0});

  int wave = 0;
  while (!pending.empty()) {
    std::vector<std::size_t> admitted;
    std::vector<std::size_t> queued;
    for (std::size_t slot : pending) {
      switch (controller.Offer(specs[slot].space_budget_words)) {
        case AdmissionOutcome::kAdmitted:
          admitted.push_back(slot);
          break;
        case AdmissionOutcome::kQueued:
          queued.push_back(slot);
          if (!queued_before[slot]) {
            queued_before[slot] = 1;
            ++stats.queries_queued;
          }
          break;
        case AdmissionOutcome::kRejected:
          result.outcomes[slot].admission = AdmissionOutcome::kRejected;
          ++stats.queries_rejected;
          break;
      }
    }
    if (admitted.empty()) {
      CHECK(queued.empty()) << "admission deadlock: queued queries with an "
                               "empty wave";
      break;
    }
    ++stats.waves;

    std::vector<QuerySpec> wave_specs;
    wave_specs.reserve(admitted.size());
    for (std::size_t slot : admitted) wave_specs.push_back(specs[slot]);
    const std::uint64_t spec_fp = FingerprintSpecs(wave_specs);

    const std::vector<ShardRange> partition =
        PartitionStream(edges.size(), options.num_workers);
    const std::string prefix =
        options.shard_dir + "/w" + std::to_string(wave);

    std::string spec_path;
    if (options.launch == ShardLaunch::kSubprocess) {
      spec_path = prefix + ".specs";
      std::string error;
      CHECK(WriteSpecFile(spec_path, wave_specs, &error)) << error;
    }

    std::vector<WorkerLaunch> launches(
        static_cast<std::size_t>(options.num_workers));
    for (std::size_t i = 0; i < launches.size(); ++i) {
      ShardWorkerConfig& c = launches[i].config;
      c.specs = wave_specs;
      c.edges = edges;
      c.ranges = {partition[i]};
      c.worker_id = static_cast<std::uint32_t>(i);
      c.num_workers = static_cast<std::uint32_t>(options.num_workers);
      c.stream_fingerprint = stream_fp;
      c.spec_fingerprint = spec_fp;
      c.block_edges = options.block_edges;
      c.epoch_edges = options.epoch_edges;
      if (options.epoch_edges > 0) {
        c.checkpoint_path = prefix + "-s" + std::to_string(i) + ".ckpt";
      }
      if (wave == 0 && options.kill_worker >= 0 &&
          static_cast<std::size_t>(options.kill_worker) == i) {
        c.die_after_edges = options.kill_after_edges;
      }
      launches[i].state_path = prefix + "-s" + std::to_string(i) + ".state";
    }

    if (wave == 0 && options.epoch_edges > 0) {
      EpochManifest manifest;
      manifest.num_workers = static_cast<std::uint32_t>(options.num_workers);
      manifest.stream_fingerprint = stream_fp;
      manifest.stream_length = edges.size();
      manifest.spec_fingerprint = spec_fp;
      manifest.epoch_edges = options.epoch_edges;
      for (const WorkerLaunch& launch : launches) {
        manifest.worker_ranges.push_back(launch.config.ranges);
        const std::string& ckpt = launch.config.checkpoint_path;
        manifest.checkpoint_files.push_back(
            ckpt.substr(DirName(ckpt).size() + 1));
      }
      std::string error;
      CHECK(SaveEpochManifest(options.shard_dir + "/epoch.manifest", manifest,
                              &error))
          << error;
    }

    std::vector<ShardState> states;
    RunWorkersToCompletion(launches, wave_specs, options, spec_path, &states,
                           &result.workers_launched,
                           &result.workers_recovered);

    std::vector<EdgeQuery> merged = MergeShardStates(wave_specs, states, {});
    FinalizeShardWave(admitted, wave, edges.size(), merged, result.outcomes,
                      stats);

    for (std::size_t slot : admitted) {
      controller.Release(specs[slot].space_budget_words);
      ++stats.queries_admitted;
    }
    pending = std::move(queued);
    ++wave;
  }
  stats.budget_peak_words = controller.peak_reserved_words();
  return result;
}

namespace {

std::string EncodeEpochManifest(const EpochManifest& manifest) {
  StateWriter h;
  h.U32(manifest.num_workers);
  h.U64(manifest.stream_fingerprint);
  h.U64(manifest.stream_length);
  h.U64(manifest.spec_fingerprint);
  h.U64(manifest.epoch_edges);
  h.Size(manifest.worker_ranges.size());
  for (const std::vector<ShardRange>& ranges : manifest.worker_ranges) {
    h.Size(ranges.size());
    for (const ShardRange& r : ranges) {
      h.U64(r.begin);
      h.U64(r.end);
    }
  }
  h.Size(manifest.checkpoint_files.size());
  for (const std::string& f : manifest.checkpoint_files) h.Str(f);
  std::string out;
  AppendFrame(&out, FrameType::kHeader, h.str());
  StateWriter f;
  f.U32(manifest.num_workers);
  AppendFrame(&out, FrameType::kFooter, f.str());
  return out;
}

}  // namespace

bool SaveEpochManifest(const std::string& path, const EpochManifest& manifest,
                       std::string* error) {
  // Durable atomic write (tmp + fsync + rename + parent-dir fsync): the
  // manifest is the recovery root — a crash must never leave it torn or
  // silently un-persisted.
  return io::WriteFileAtomic(path, EncodeEpochManifest(manifest), error);
}

bool LoadEpochManifest(const std::string& path, EpochManifest* manifest,
                       std::string* error) {
  auto reject = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::string encoded;
  if (!io::ReadFileToString(path, &encoded, error)) return false;

  std::size_t pos = 0;
  FrameType type;
  std::string_view payload;
  if (!ReadFrame(encoded, &pos, &type, &payload, error)) return false;
  if (type != FrameType::kHeader) {
    return reject("epoch manifest must start with a header frame");
  }
  EpochManifest out;
  StateReader r(payload);
  out.num_workers = r.U32();
  out.stream_fingerprint = r.U64();
  out.stream_length = r.U64();
  out.spec_fingerprint = r.U64();
  out.epoch_edges = r.U64();
  const std::size_t num_workers = r.Size();
  if (!r.ok() || num_workers != out.num_workers || num_workers == 0 ||
      num_workers > (std::size_t{1} << 20)) {
    return reject("epoch manifest malformed (worker count)");
  }
  out.worker_ranges.resize(num_workers);
  for (std::vector<ShardRange>& ranges : out.worker_ranges) {
    const std::size_t n = r.Size();
    if (!r.ok() || n > r.Remaining() / 16 + 1) {
      return reject("epoch manifest malformed (range count)");
    }
    for (std::size_t i = 0; i < n; ++i) {
      ShardRange range;
      range.begin = r.U64();
      range.end = r.U64();
      if (range.begin > range.end) {
        return reject("epoch manifest malformed (inverted range)");
      }
      ranges.push_back(range);
    }
  }
  const std::size_t num_files = r.Size();
  if (!r.ok() || num_files != num_workers) {
    return reject("epoch manifest malformed (checkpoint file count)");
  }
  for (std::size_t i = 0; i < num_files; ++i) {
    out.checkpoint_files.push_back(r.Str());
  }
  if (!r.AtEnd()) {
    return reject("epoch manifest malformed (trailing header bytes)");
  }
  if (!ReadFrame(encoded, &pos, &type, &payload, error)) return false;
  if (type != FrameType::kFooter) return reject("expected a footer frame");
  StateReader f(payload);
  if (f.U32() != out.num_workers || !f.AtEnd()) {
    return reject("epoch manifest footer disagrees with the header");
  }
  if (pos != encoded.size()) {
    return reject("trailing bytes after the epoch manifest footer");
  }
  *manifest = std::move(out);
  return true;
}

bool ResumeShardedBatch(const std::string& manifest_path,
                        const std::vector<QuerySpec>& specs,
                        std::span<const Edge> edges,
                        const ShardPlanOptions& options,
                        ShardBatchResult* result, std::string* error) {
  auto reject = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  CheckShardableSpecs(specs);
  IgnoreSigpipe();
  CHECK_GT(options.num_workers, 0);
  CHECK(!options.shard_dir.empty());

  EpochManifest manifest;
  if (!LoadEpochManifest(manifest_path, &manifest, error)) return false;
  if (manifest.stream_length != edges.size()) {
    return reject("epoch manifest is for a stream of " +
                  std::to_string(manifest.stream_length) + " edges, got " +
                  std::to_string(edges.size()));
  }
  const std::uint64_t stream_fp = FingerprintEdgeStream(edges);
  if (manifest.stream_fingerprint != stream_fp) {
    return reject("epoch manifest stream fingerprint mismatch");
  }

  ShardBatchResult out;
  out.resumed = true;
  out.outcomes.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) out.outcomes[i].spec = specs[i];

  // Replay admission. W-change restore is restricted to single-wave
  // batches: a queued query would belong to a wave whose workers never
  // started, and the manifest only describes wave 0.
  AdmissionController controller(options.budget);
  std::vector<std::size_t> admitted;
  for (std::size_t slot = 0; slot < specs.size(); ++slot) {
    switch (controller.Offer(specs[slot].space_budget_words)) {
      case AdmissionOutcome::kAdmitted:
        admitted.push_back(slot);
        break;
      case AdmissionOutcome::kQueued:
        return reject("batch is multi-wave (query '" + specs[slot].name +
                      "' queued); W-change restore only supports "
                      "single-wave batches");
      case AdmissionOutcome::kRejected:
        out.outcomes[slot].admission = AdmissionOutcome::kRejected;
        ++out.stats.queries_rejected;
        break;
    }
  }
  if (admitted.empty()) return reject("no queries admitted on resume");
  ++out.stats.waves;

  std::vector<QuerySpec> wave_specs;
  for (std::size_t slot : admitted) wave_specs.push_back(specs[slot]);
  const std::uint64_t spec_fp = FingerprintSpecs(wave_specs);
  if (spec_fp != manifest.spec_fingerprint) {
    return reject("epoch manifest was written for a different query set "
                  "(spec fingerprint mismatch)");
  }

  // Fold the surviving per-shard checkpoints (fixed shard order) as the
  // base state, and collect each shard's unprocessed leftover ranges.
  const std::string ckpt_dir = DirName(manifest_path);
  std::vector<EdgeQuery> base;
  for (const QuerySpec& spec : wave_specs) base.push_back(MakeEdgeQuery(spec));
  std::vector<ShardRange> leftovers;
  for (std::size_t s = 0; s < manifest.worker_ranges.size(); ++s) {
    const std::vector<ShardRange>& ranges = manifest.worker_ranges[s];
    std::uint64_t shard_done = 0;
    ShardState ckpt;
    std::string why;
    const std::string path = ckpt_dir + "/" + manifest.checkpoint_files[s];
    if (LoadShardState(path, &ckpt, &why)) {
      const ShardHeader& h = ckpt.header;
      if (h.worker_id == s && h.num_workers == manifest.num_workers &&
          h.stream_fingerprint == stream_fp &&
          h.stream_length == edges.size() &&
          h.spec_fingerprint == spec_fp && h.ranges == ranges &&
          h.edges_done <= TotalRangeEdges(ranges) &&
          ckpt.query_states.size() == wave_specs.size()) {
        shard_done = h.edges_done;
        for (std::size_t qi = 0; qi < wave_specs.size(); ++qi) {
          EdgeQuery scratch =
              RestoreQuery(wave_specs[qi], ckpt.query_states[qi].second);
          CHECK(base[qi].algorithm->MergeFrom(*scratch.algorithm));
        }
      } else {
        LOG(WARNING) << "shard " << s
                     << ": checkpoint rejected on resume; its whole slice "
                        "will be re-run";
      }
    } else {
      LOG(WARNING) << "shard " << s << ": no usable checkpoint (" << why
                   << "); its whole slice will be re-run";
    }
    const std::vector<ShardRange> left = AdvanceRanges(ranges, shard_done);
    leftovers.insert(leftovers.end(), left.begin(), left.end());
  }

  // Re-partition the leftovers among the new worker count; fresh
  // zero-state workers, no nested checkpointing. Merge order is fixed:
  // checkpoint base first, then workers 0..W'−1 — exact addition makes any
  // fixed order bit-identical to the unsharded run.
  const std::vector<std::vector<ShardRange>> assignments =
      SplitRangesAcross(leftovers, options.num_workers);

  std::string spec_path;
  if (options.launch == ShardLaunch::kSubprocess) {
    CHECK(!options.stream_path.empty());
    spec_path = options.shard_dir + "/resume.specs";
    std::string werr;
    CHECK(WriteSpecFile(spec_path, wave_specs, &werr)) << werr;
  }
  std::vector<WorkerLaunch> launches(assignments.size());
  for (std::size_t i = 0; i < launches.size(); ++i) {
    ShardWorkerConfig& c = launches[i].config;
    c.specs = wave_specs;
    c.edges = edges;
    c.ranges = assignments[i];
    c.worker_id = static_cast<std::uint32_t>(i);
    c.num_workers = static_cast<std::uint32_t>(options.num_workers);
    c.stream_fingerprint = stream_fp;
    c.spec_fingerprint = spec_fp;
    c.block_edges = options.block_edges;
    launches[i].state_path =
        options.shard_dir + "/resume-s" + std::to_string(i) + ".state";
  }
  std::vector<ShardState> states;
  RunWorkersToCompletion(launches, wave_specs, options, spec_path, &states,
                         &out.workers_launched, &out.workers_recovered);

  std::vector<EdgeQuery> merged =
      MergeShardStates(wave_specs, states, std::move(base));
  FinalizeShardWave(admitted, /*wave=*/0, edges.size(), merged, out.outcomes,
                    out.stats);
  for (std::size_t slot : admitted) {
    controller.Release(specs[slot].space_budget_words);
    ++out.stats.queries_admitted;
  }
  out.stats.budget_peak_words = controller.peak_reserved_words();
  *result = std::move(out);
  return true;
}

}  // namespace cyclestream::engine
