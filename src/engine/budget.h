#ifndef CYCLESTREAM_ENGINE_BUDGET_H_
#define CYCLESTREAM_ENGINE_BUDGET_H_

#include <cstddef>
#include <set>
#include <string_view>

#include "stream/space.h"

namespace cyclestream::engine {

/// Memory policy for one engine batch, in words (the same unit SpaceTracker
/// and AuditSpace use). Zero means "no cap".
struct BudgetPolicy {
  /// Upper bound on any single query's declared budget. A query declaring
  /// more can never run under this policy → rejected outright.
  std::size_t per_query_words = 0;
  /// Upper bound on the sum of declared budgets running concurrently. A
  /// query that fits the policy but not the currently free headroom is
  /// queued to a later wave (each wave is one more physical read of the
  /// stream, traded for staying under the cap).
  std::size_t aggregate_words = 0;
};

/// What the admission layer decided for one offered query.
enum class AdmissionOutcome {
  kAdmitted,  // Reserved; runs in the current wave.
  kQueued,    // Fits the policy, not the current headroom; later wave.
  kRejected,  // Can never fit this policy; never runs.
};

std::string_view AdmissionOutcomeName(AdmissionOutcome outcome);

/// Reservation bookkeeping against a BudgetPolicy. Reservations are held in
/// a SpaceTracker so the engine's own accounting is audited with the same
/// machinery as the algorithms it hosts: Offer() charges the declared words
/// on admission, Release() returns them when the query's wave completes.
///
/// Semantics (deterministic — pure function of policy + offer sequence):
///  - declared == 0 ("unbudgeted"): admitted freely when no aggregate cap is
///    configured; rejected under an aggregate cap (an unbudgeted query gives
///    the controller nothing to reserve, so admitting it would make the cap
///    unenforceable).
///  - declared > per_query_words (cap set): rejected.
///  - declared > aggregate_words (cap set): rejected — no wave can fit it.
///  - declared > free headroom under the aggregate cap: queued.
///  - otherwise: admitted, `declared` words reserved until Release().
class AdmissionController {
 public:
  explicit AdmissionController(const BudgetPolicy& policy);

  /// Decides the fate of a query declaring `declared_words`. Reserves on
  /// kAdmitted; no state change otherwise.
  AdmissionOutcome Offer(std::size_t declared_words);

  /// Returns an admitted query's reservation (call once per kAdmitted).
  /// The controller keeps a ledger of outstanding reservation sizes:
  /// releasing a size that was never admitted — or already released —
  /// aborts instead of silently corrupting the aggregate headroom all
  /// later waves admit against.
  void Release(std::size_t declared_words);

  const BudgetPolicy& policy() const { return policy_; }
  std::size_t reserved_words() const { return tracker_.Current(); }
  std::size_t peak_reserved_words() const { return tracker_.Peak(); }
  std::size_t outstanding_reservations() const { return ledger_.size(); }

 private:
  BudgetPolicy policy_;
  SpaceTracker tracker_;
  /// Sizes of the live reservations, one entry per admitted-and-unreleased
  /// query. A multiset because distinct queries may declare equal budgets.
  std::multiset<std::size_t> ledger_;
};

}  // namespace cyclestream::engine

#endif  // CYCLESTREAM_ENGINE_BUDGET_H_
