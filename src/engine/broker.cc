#include "engine/broker.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "stream/driver.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/parallel.h"

namespace cyclestream::engine {
namespace {

// Per-stream-kind plumbing for the shared wave loop (mirrors the Kind
// structs in stream/driver.cc).
struct EdgeTraits {
  using Query = EdgeQuery;
  static Query Make(const QuerySpec& spec) { return MakeEdgeQuery(spec); }
  static void ProcessBlock(EdgeStreamAlgorithm& alg, int pass,
                           const Edge* items, std::size_t n,
                           std::size_t base_position) {
    alg.ProcessEdgeBlock(pass, std::span<const Edge>(items, n),
                         base_position);
  }
  static void Credit(ExternalRunStats& credit, std::uint64_t delivered) {
    credit.edges_processed += delivered;
  }
};

struct AdjacencyTraits {
  using Query = AdjacencyQuery;
  static Query Make(const QuerySpec& spec) { return MakeAdjacencyQuery(spec); }
  static void ProcessBlock(AdjacencyStreamAlgorithm& alg, int pass,
                           const AdjacencyList* items, std::size_t n,
                           std::size_t base_position) {
    for (std::size_t i = 0; i < n; ++i) {
      alg.ProcessList(pass, items[i], base_position + i);
    }
  }
  static void Credit(ExternalRunStats& credit, std::uint64_t delivered) {
    credit.lists_processed += delivered;
  }
};

struct TurnstileTraits {
  using Query = TurnstileQuery;
  static Query Make(const QuerySpec& spec) {
    return MakeTurnstileQuery(spec);
  }
  static void ProcessBlock(TurnstileStreamAlgorithm& alg, int pass,
                           const TurnstileUpdate* items, std::size_t n,
                           std::size_t base_position) {
    alg.ProcessUpdateBlock(pass, std::span<const TurnstileUpdate>(items, n),
                           base_position);
  }
  static void Credit(ExternalRunStats& credit, std::uint64_t delivered) {
    credit.updates_processed += delivered;
  }
};

// Block view over an in-memory adjacency stream, so the adjacency path
// shares the edge path's wave loop. (Adjacency lists are only ever
// in-memory; there is no binary adjacency format.)
class AdjacencyBlockSource {
 public:
  explicit AdjacencyBlockSource(const AdjacencyStream& stream)
      : stream_(stream) {}

  std::size_t size() const { return stream_.size(); }
  void Reset() { pos_ = 0; }
  const AdjacencyList* NextBlock(std::size_t max_items, std::size_t* count) {
    const std::size_t n = std::min(max_items, stream_.size() - pos_);
    *count = n;
    if (n == 0) return nullptr;
    const AdjacencyList* block = stream_.data() + pos_;
    pos_ += n;
    return block;
  }

 private:
  const AdjacencyStream& stream_;
  std::size_t pos_ = 0;
};

// The driver's audit cross-check (stream/driver.cc MaybeAuditSpace),
// replicated because the engine drives passes itself: after the final
// pass the state walk must agree exactly with the self-reported tracker.
// Returns true iff an audit actually ran (and passed — mismatches abort).
template <typename Alg>
bool MaybeAuditSpace(const Alg& alg) {
  if (!SpaceAuditEnabled()) return false;
  const SpaceTracker* tracker = alg.space_tracker();
  const std::size_t walked = alg.AuditSpace();
  if (tracker == nullptr || walked == kNoSpaceAudit) return false;
  CHECK_EQ(walked, tracker->Current())
      << "space audit failed: the state walk disagrees with the "
         "self-reported footprint (accounting bug)";
  CHECK_LE(walked, tracker->Peak())
      << "space audit failed: current footprint exceeds the recorded peak";
  return true;
}

// Runs one wave: constructs the admitted queries, drives every logical
// pass with a single physical read of `source`, and fills the outcomes.
template <typename Traits, typename Source>
void RunWave(Source& source, const BrokerOptions& options,
             const std::vector<QuerySpec>& specs,
             const std::vector<std::size_t>& slots, int wave,
             std::vector<QueryOutcome>& outcomes, EngineStats& stats) {
  using Query = typename Traits::Query;
  std::vector<Query> queries;
  queries.reserve(slots.size());
  for (std::size_t slot : slots) queries.push_back(Traits::Make(specs[slot]));

  int max_passes = 0;
  for (const Query& q : queries) {
    max_passes = std::max(max_passes, q.algorithm->NumPasses());
  }
  const std::size_t stream_length = source.size();
  std::vector<std::uint64_t> delivered(slots.size(), 0);

  for (int pass = 0; pass < max_passes; ++pass) {
    // Queries with fewer passes drop out of later physical reads.
    std::vector<std::size_t> active;  // Indices into `queries`.
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (pass < queries[i].algorithm->NumPasses()) active.push_back(i);
    }
    for (std::size_t i : active) {
      queries[i].algorithm->StartPass(pass, stream_length);
    }

    // One physical read serves every active query. Fan-out is sharded by
    // query (slot qi → shard qi mod shards, each shard serial), so the
    // per-query call sequence is the exact standalone sequence — the block
    // barrier only bounds how far queries can drift apart in the stream.
    // With a single active query the outer ParallelFor is bypassed entirely
    // (not even a 1-wide region): util/parallel.h runs nested ParallelFor
    // calls serially inline, so the bypass is what lets a lone query's own
    // intra-query shards (ProcessEdgeBlock) actually use the pool.
    ++stats.physical_passes;
    const std::size_t shards =
        std::min(active.size(), static_cast<std::size_t>(DefaultThreads()));
    source.Reset();
    std::size_t base = 0;
    std::size_t n = 0;
    for (const auto* block = source.NextBlock(options.block_size, &n);
         block != nullptr; block = source.NextBlock(options.block_size, &n)) {
      stats.source_items_read += n;
      if (shards <= 1) {
        for (std::size_t qi = 0; qi < active.size(); ++qi) {
          Traits::ProcessBlock(*queries[active[qi]].algorithm, pass, block, n,
                               base);
          delivered[active[qi]] += n;
        }
      } else {
        ParallelFor(shards, [&](std::size_t shard) {
          for (std::size_t qi = shard; qi < active.size(); qi += shards) {
            Traits::ProcessBlock(*queries[active[qi]].algorithm, pass, block,
                                 n, base);
            delivered[active[qi]] += n;
          }
        });
      }
      stats.items_delivered += static_cast<std::uint64_t>(n) * active.size();
      base += n;
    }
    CHECK_EQ(base, stream_length)
        << "EdgeSource delivered a different stream length than size()";

    for (std::size_t i : active) queries[i].algorithm->EndPass(pass);
  }

  // Finalize in registration order on the caller thread.
  ExternalRunStats credit;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Query& q = queries[i];
    QueryOutcome& out = outcomes[slots[i]];
    if (MaybeAuditSpace(*q.algorithm)) ++credit.audits_passed;
    out.admission = AdmissionOutcome::kAdmitted;
    out.wave = wave;
    out.estimate = q.result();
    out.passes = q.algorithm->NumPasses();
    out.items_delivered = delivered[i];
    if (const SpaceTracker* tracker = q.algorithm->space_tracker()) {
      out.space_peak_components = tracker->PeakComponents();
    }
    ++credit.runs;
    credit.passes += static_cast<std::uint64_t>(out.passes);
    Traits::Credit(credit, delivered[i]);
  }
  AddExternalRunStats(credit);
}

}  // namespace

const Edge* VectorEdgeSource::NextBlock(std::size_t max_edges,
                                        std::size_t* count) {
  const std::size_t n = std::min(max_edges, stream_.size() - pos_);
  *count = n;
  if (n == 0) return nullptr;
  const Edge* block = stream_.data() + pos_;
  pos_ += n;
  return block;
}

const Edge* BinaryEdgeSource::NextBlock(std::size_t max_edges,
                                        std::size_t* count) {
  const std::size_t n = std::min(max_edges, reader_.num_edges() - pos_);
  *count = n;
  if (n == 0) return nullptr;
  const Edge* block = reader_.edges() + pos_;
  pos_ += n;
  return block;
}

const TurnstileUpdate* VectorTurnstileSource::NextBlock(
    std::size_t max_updates, std::size_t* count) {
  const std::size_t n = std::min(max_updates, stream_.size() - pos_);
  *count = n;
  if (n == 0) return nullptr;
  const TurnstileUpdate* block = stream_.data() + pos_;
  pos_ += n;
  return block;
}

StreamBroker::StreamBroker(const BrokerOptions& options) : options_(options) {
  CHECK_GT(options_.block_size, 0u) << "BrokerOptions::block_size must be > 0";
}

std::size_t StreamBroker::AddQuery(QuerySpec spec) {
  CHECK(!ran_) << "StreamBroker is one-shot; register before Run*Queries";
  CHECK(!spec.name.empty()) << "QuerySpec::name must be set";
  for (const QuerySpec& existing : specs_) {
    CHECK(existing.name != spec.name)
        << "duplicate query name '" << spec.name << "'";
  }
  specs_.push_back(std::move(spec));
  return specs_.size() - 1;
}

template <typename Traits, typename Source>
std::vector<QueryOutcome> StreamBroker::RunBatch(Source& source) {
  CHECK(!ran_) << "StreamBroker is one-shot; construct a new broker";
  ran_ = true;

  std::vector<QueryOutcome> outcomes(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) outcomes[i].spec = specs_[i];

  AdmissionController controller(options_.budget);
  std::vector<char> queued_before(specs_.size(), 0);
  std::vector<std::size_t> pending(specs_.size());
  std::iota(pending.begin(), pending.end(), std::size_t{0});

  int wave = 0;
  while (!pending.empty()) {
    std::vector<std::size_t> admitted;
    std::vector<std::size_t> queued;
    for (std::size_t slot : pending) {
      switch (controller.Offer(specs_[slot].space_budget_words)) {
        case AdmissionOutcome::kAdmitted:
          admitted.push_back(slot);
          break;
        case AdmissionOutcome::kQueued:
          queued.push_back(slot);
          if (!queued_before[slot]) {
            queued_before[slot] = 1;
            ++stats_.queries_queued;
          }
          break;
        case AdmissionOutcome::kRejected:
          outcomes[slot].admission = AdmissionOutcome::kRejected;
          ++stats_.queries_rejected;
          break;
      }
    }
    if (admitted.empty()) {
      // Between waves every reservation is released, and Offer rejects
      // anything larger than the aggregate cap outright — so a non-empty
      // pending set always admits at least its first query.
      CHECK(queued.empty()) << "admission deadlock: queued queries with an "
                               "empty wave";
      break;
    }
    ++stats_.waves;
    RunWave<Traits>(source, options_, specs_, admitted, wave, outcomes,
                    stats_);
    for (std::size_t slot : admitted) {
      controller.Release(specs_[slot].space_budget_words);
      ++stats_.queries_admitted;
    }
    pending = std::move(queued);
    ++wave;
  }
  stats_.budget_peak_words = controller.peak_reserved_words();
  return outcomes;
}

std::vector<QueryOutcome> StreamBroker::RunEdgeQueries(EdgeSource& source) {
  for (const QuerySpec& spec : specs_) {
    CHECK(IsEdgeKind(spec.kind))
        << "RunEdgeQueries: query '" << spec.name << "' has adjacency kind "
        << QueryKindName(spec.kind);
  }
  return RunBatch<EdgeTraits>(source);
}

std::vector<QueryOutcome> StreamBroker::RunEdgeQueries(
    const EdgeStream& stream) {
  VectorEdgeSource source(stream);
  return RunEdgeQueries(source);
}

std::vector<QueryOutcome> StreamBroker::RunAdjacencyQueries(
    const AdjacencyStream& stream) {
  for (const QuerySpec& spec : specs_) {
    CHECK(!IsEdgeKind(spec.kind))
        << "RunAdjacencyQueries: query '" << spec.name << "' has edge kind "
        << QueryKindName(spec.kind);
  }
  AdjacencyBlockSource source(stream);
  return RunBatch<AdjacencyTraits>(source);
}

std::vector<QueryOutcome> StreamBroker::RunTurnstileQueries(
    TurnstileSource& source) {
  for (const QuerySpec& spec : specs_) {
    CHECK(IsTurnstileKind(spec.kind))
        << "RunTurnstileQueries: query '" << spec.name
        << "' has non-turnstile kind " << QueryKindName(spec.kind);
  }
  return RunBatch<TurnstileTraits>(source);
}

std::vector<QueryOutcome> StreamBroker::RunTurnstileQueries(
    const TurnstileStream& stream) {
  VectorTurnstileSource source(stream);
  return RunTurnstileQueries(source);
}

void ExportToManifest(const std::vector<QueryOutcome>& outcomes,
                      const EngineStats& stats, RunManifest& manifest) {
  MetricsRegistry& m = manifest.metrics();
  m.SetInt("engine.source_items_read",
           static_cast<std::int64_t>(stats.source_items_read));
  m.SetInt("engine.items_delivered",
           static_cast<std::int64_t>(stats.items_delivered));
  m.SetInt("engine.physical_passes",
           static_cast<std::int64_t>(stats.physical_passes));
  m.SetInt("engine.waves", static_cast<std::int64_t>(stats.waves));
  m.SetInt("engine.queries", static_cast<std::int64_t>(outcomes.size()));
  m.SetInt("engine.queries_admitted",
           static_cast<std::int64_t>(stats.queries_admitted));
  m.SetInt("engine.queries_queued",
           static_cast<std::int64_t>(stats.queries_queued));
  m.SetInt("engine.queries_rejected",
           static_cast<std::int64_t>(stats.queries_rejected));
  m.SetInt("engine.budget_peak_words",
           static_cast<std::int64_t>(stats.budget_peak_words));

  for (const QueryOutcome& out : outcomes) {
    MetricsRegistry q;
    q.SetStr("kind", std::string(QueryKindName(out.spec.kind)));
    q.SetStr("target", std::string(QueryKindTarget(out.spec.kind)));
    q.SetStr("admission", std::string(AdmissionOutcomeName(out.admission)));
    q.SetInt("wave", out.wave);
    q.SetInt("seed", static_cast<std::int64_t>(out.spec.base.seed));
    q.SetInt("budget_words",
             static_cast<std::int64_t>(out.spec.space_budget_words));
    // Window/decay knobs change results, so they belong in the
    // deterministic section (unlike the sketch_backend/intra_shards
    // throughput knobs, which are deliberately absent).
    if (out.spec.window_edges > 0) {
      q.SetInt("window", static_cast<std::int64_t>(out.spec.window_edges));
      q.SetInt("window_buckets",
               static_cast<std::int64_t>(out.spec.window_buckets));
    }
    if (out.spec.decay_epoch_edges > 0) {
      q.SetInt("decay_epoch",
               static_cast<std::int64_t>(out.spec.decay_epoch_edges));
      q.SetInt("decay_log2", static_cast<std::int64_t>(out.spec.decay_log2));
    }
    if (out.poisoned) {
      // A poisoned wave has no trustworthy estimate; publish the marker and
      // nothing else, so a consumer can never mistake the zero-initialized
      // estimate for a result.
      q.SetInt("poisoned", 1);
    } else if (out.admission == AdmissionOutcome::kAdmitted) {
      q.Set("estimate", out.estimate.value);
      q.SetInt("space_words", static_cast<std::int64_t>(out.estimate.space_words));
      q.SetInt("passes", out.passes);
      q.SetInt("items_delivered",
               static_cast<std::int64_t>(out.items_delivered));
      for (const auto& [component, words] : out.space_peak_components) {
        q.SetInt("space." + component, static_cast<std::int64_t>(words));
      }
    }
    manifest.AddQuerySection(out.spec.name, std::move(q));
  }
}

}  // namespace cyclestream::engine
