#ifndef CYCLESTREAM_ENGINE_SUPERVISOR_H_
#define CYCLESTREAM_ENGINE_SUPERVISOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/broker.h"
#include "engine/coordinator.h"
#include "engine/query.h"
#include "util/metrics.h"

namespace cyclestream::engine {

/// Supervision layer over the sharded engine (DESIGN.md §15): wraps the
/// coordinator's wave loop into a fault-tolerant always-on daemon.
///
/// Failure-handling ladder, mildest remedy first:
///
///   1. Worker retry: a worker that dies (crash, nonzero exit, torn state
///      file) is relaunched — resuming from its own epoch checkpoint — up
///      to RetryPolicy::max_attempts times, each relaunch gated by a
///      deterministic exponential backoff.
///   2. Deadline kill: a worker that stops making progress (no new
///      heartbeat past DeadlinePolicy::shard_deadline_ms, or the wave
///      exceeding wave_deadline_ms) is SIGKILLed by the watchdog and falls
///      back to rung 1 — a hang becomes an ordinary retryable death.
///   3. Wave poisoning: a worker exhausting its attempt budget poisons the
///      wave — its queries report `poisoned` instead of an estimate, the
///      wave's reservations are released, and the daemon proceeds to the
///      next wave. The daemon itself never crashes on worker failure.
///
/// Graceful drain: SIGTERM/SIGINT (see InstallDrainHandlers) stops the
/// batch at the next epoch boundary — running workers checkpoint and exit
/// (kDrainExitCode), the daemon manifest records the in-flight wave and
/// pending admission queue, and RunSupervisedBatch returns drained=true.
/// A later resume=true run completes the batch; because shard states are
/// exact-integer and merges associative, the resumed run's deterministic
/// manifest is byte-identical to an uninterrupted run's. The same resume
/// path recovers a SIGKILLed (crashed) daemon from the same files.
///
/// Everything the supervisor counts (retries, backoff, kills, drains) is
/// execution-dependent and exported via MetricsRegistry::SetExecution —
/// never into the deterministic payload.

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

/// Per-worker retry budget + backoff shape. Backoff is deterministic:
/// min(cap, base << (attempt-1)) plus a Mix64-seeded jitter in
/// [0, base/2] keyed on (seed, wave, worker, attempt) — reproducible
/// across runs, decorrelated across workers.
struct RetryPolicy {
  /// Total launch attempts per worker per wave (first launch included).
  int max_attempts = 3;
  std::uint64_t base_backoff_ms = 50;
  std::uint64_t backoff_cap_ms = 2000;
  std::uint64_t jitter_seed = 0x51ACED;
};

/// The backoff before retry attempt `attempt` (2-based: the first retry is
/// attempt 2). Exposed for tests — determinism is the point.
std::uint64_t ComputeBackoffMs(const RetryPolicy& policy, int wave,
                               std::uint32_t worker, int attempt);

/// Liveness deadlines, enforced only for subprocess launches (an
/// in-process hang would wedge the supervisor itself; deadlines on
/// in-process runs are warned about and ignored).
struct DeadlinePolicy {
  /// Kill a worker with no heartbeat progress for this long. 0 disables.
  std::uint64_t shard_deadline_ms = 0;
  /// Kill every still-running worker when one wave round outlives this
  /// (the timer restarts after each kill round). 0 disables.
  std::uint64_t wave_deadline_ms = 0;
  /// Watchdog / reap-loop polling cadence.
  std::uint64_t poll_interval_ms = 20;
};

struct SupervisorOptions {
  /// The underlying sharded-execution plan (workers, budget, epoch
  /// cadence, shard_dir, launch mode, kill_worker fault injection).
  ShardPlanOptions plan;
  RetryPolicy retry;
  DeadlinePolicy deadline;
  /// Worker heartbeat cadence in worker-local edges; 0 auto-selects
  /// plan.block_edges whenever a shard deadline is set.
  std::uint64_t heartbeat_edges = 0;
  /// Resume a drained/crashed batch from shard_dir's daemon manifest.
  bool resume = false;
  /// Tests: account backoff without wall-clock sleeping.
  bool sleep_in_backoff = true;
  /// Fault injection: worker `hang_worker` hangs forever after
  /// `hang_after_edges` slice-local edges on its first launch of the first
  /// wave (subprocess only — the watchdog's prey). -1 disables.
  int hang_worker = -1;
  std::uint64_t hang_after_edges = 0;
  /// Slows every worker down (ShardWorkerConfig::throttle_ms_per_block);
  /// lets drain/deadline smoke tests reliably catch a run mid-wave.
  std::uint64_t throttle_ms_per_block = 0;
};

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// Execution-dependent accounting. Exported with ExportSupervisorCounters
/// (SetExecution — excluded from deterministic manifests by construction).
struct SupervisorCounters {
  std::uint64_t workers_launched = 0;
  std::uint64_t retries = 0;           // Relaunches after a failure.
  std::uint64_t backoff_ms_total = 0;  // Sum of scheduled backoffs.
  std::uint64_t deadline_kills = 0;    // Watchdog SIGKILLs (hang + wave).
  std::uint64_t waves_poisoned = 0;
  std::uint64_t drains = 0;            // Drain requests honored.
  std::uint64_t exit_fault_sentinel = 0;  // Workers dead with exit 86.
  std::uint64_t exit_nonzero = 0;         // Other nonzero exits (incl. 127).
  std::uint64_t deaths_by_signal = 0;
  std::uint64_t states_collected = 0;  // Valid state files accepted.
  std::uint64_t waves_completed = 0;
};

struct SupervisedBatchResult {
  std::vector<QueryOutcome> outcomes;  // Slot order, like the broker's.
  EngineStats stats;
  SupervisorCounters counters;
  /// The batch stopped early on a drain request; outcomes of unfinished
  /// waves keep their pre-run admission state. Resume to finish.
  bool drained = false;
  bool resumed = false;
  /// Waves abandoned after retry exhaustion (their slots are `poisoned`).
  std::vector<int> poisoned_waves;
};

// ---------------------------------------------------------------------------
// Drain control
// ---------------------------------------------------------------------------

/// Process-wide drain latch polled by the supervisor's wave/reap loops.
/// RequestSupervisorDrain is async-signal-safe.
void RequestSupervisorDrain();
bool SupervisorDrainRequested();
void ClearSupervisorDrainRequest();

/// Installs SIGTERM/SIGINT handlers that latch BOTH drain flags (the
/// supervisor's and the in-process worker's) — one signal drains whichever
/// role this process is playing. Subprocess workers receive a forwarded
/// SIGTERM from the supervisor and run their own handler.
void InstallDrainHandlers();

// ---------------------------------------------------------------------------
// Daemon manifest (drain/crash recovery root)
// ---------------------------------------------------------------------------

/// What a resume needs to finish a supervised batch, written atomically +
/// durably to `<shard_dir>/daemon.manifest` at every wave start and
/// rewritten on drain/completion. Per-shard progress lives in worker
/// checkpoint/state files; the manifest holds the batch identity and the
/// admission frontier.
struct DaemonManifest {
  std::uint64_t stream_fingerprint = 0;
  std::uint64_t stream_length = 0;
  /// FingerprintSpecs over the FULL batch (not one wave) — resume must see
  /// the identical query list to replay admission identically.
  std::uint64_t batch_spec_fingerprint = 0;
  std::uint32_t num_workers = 1;
  std::uint64_t epoch_edges = 0;
  std::uint64_t block_edges = 0;
  std::uint64_t aggregate_words = 0;  // Admission policy (replay guard).
  std::uint64_t per_query_words = 0;
  /// Waves whose workers have been launched (== last started wave + 1).
  std::uint32_t waves_started = 0;
  std::uint8_t drained = 0;    // Stopped on a drain request.
  std::uint8_t completed = 0;  // Batch ran to the end.
  /// Admission queue at the last started wave: slots still pending AFTER
  /// that wave's admissions. Resume cross-checks its replayed queue
  /// against this — a mismatch means a different batch or policy.
  std::vector<std::uint64_t> pending_slots;
};

std::string DaemonManifestPath(const std::string& shard_dir);
bool SaveDaemonManifest(const std::string& path,
                        const DaemonManifest& manifest, std::string* error);
bool LoadDaemonManifest(const std::string& path, DaemonManifest* manifest,
                        std::string* error);

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Runs `specs` over `edges` under supervision. Admission, waves, merged
/// estimates, and stats replicate RunShardedBatch (hence the broker)
/// exactly for every wave that completes; supervision only adds recovery
/// around the workers. Returns false with `*error` on resume validation
/// failure (missing/mismatched daemon manifest); programmer errors CHECK.
///
/// Resume semantics (`options.resume`): every wave is re-derived from the
/// admission replay, then collected before launched — workers whose state
/// files already validate are not re-run; the rest are relaunched with
/// checkpoint resume. A fully collected wave costs no subprocess at all,
/// so resuming a drained OR crashed daemon finishes exactly the work the
/// interruption left undone and produces the identical result.
bool RunSupervisedBatch(const std::vector<QuerySpec>& specs,
                        std::span<const Edge> edges,
                        const SupervisorOptions& options,
                        SupervisedBatchResult* result, std::string* error);

/// Publishes counters as `supervisor.*` execution metrics (timings/env
/// section of the manifest — never the deterministic payload).
void ExportSupervisorCounters(const SupervisorCounters& counters,
                              RunManifest& manifest);

}  // namespace cyclestream::engine

#endif  // CYCLESTREAM_ENGINE_SUPERVISOR_H_
