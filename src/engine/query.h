#ifndef CYCLESTREAM_ENGINE_QUERY_H_
#define CYCLESTREAM_ENGINE_QUERY_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/config.h"
#include "graph/types.h"
#include "sketch/sketch_backend.h"
#include "stream/driver.h"
#include "stream/dynamic/turnstile.h"

namespace cyclestream::engine {

/// The estimators the multi-query engine can host. A "query" is one small-
/// memory estimator riding the shared pass; the engine fans the same edge
/// (or adjacency) blocks out to every registered query, so N queries cost
/// one stream read per logical pass instead of N.
enum class QueryKind {
  // Edge-stream algorithms (triangles).
  kRandomOrderTriangles,
  kTriest,
  kCormodeJowhari,
  // Edge-stream algorithms (four-cycles).
  kArbF2,
  kArbThreePass,
  kBeraChakrabarti,
  // Adjacency-stream algorithms (four-cycles).
  kAdjDiamond,
  kAdjF2,
  kAdjL2,
  // Turnstile-stream algorithms (dynamic insert/delete model; linear
  // sketches, optionally windowed or decayed via the spec's window/decay
  // fields).
  kTurnstileF2Triangle,
  kTurnstileF2C4,
};

/// Stable CLI/manifest name ("random-order", "triest", ...).
std::string_view QueryKindName(QueryKind kind);

/// Inverse of QueryKindName; nullopt for unknown names.
std::optional<QueryKind> ParseQueryKind(std::string_view name);

/// True for kinds consuming edge streams (vs adjacency-list or turnstile
/// streams).
bool IsEdgeKind(QueryKind kind);

/// True for kinds consuming turnstile (insert/delete) streams.
bool IsTurnstileKind(QueryKind kind);

/// True for kinds whose state is a linear sketch of the edge stream — state
/// over a partitioned stream merges by addition (MergeFrom) into exactly
/// the whole-stream state, so the kind can run under the multi-process
/// shard coordinator. Currently only arb-f2 (Thm 5.7): its per-vertex
/// accumulators are sums of ±1 / ±1·±1 terms. The others are excluded for
/// cause: random-order/cormode-jowhari condition on stream *positions*
/// (prefix membership), triest's reservoir is an order-dependent sample,
/// and the multi-pass kinds need whole-stream passes.
bool IsShardMergeableKind(QueryKind kind);

/// "triangles" or "c4" — what the estimate approximates.
std::string_view QueryKindTarget(QueryKind kind);

/// One registered query: which estimator, its parameters, its seed, and the
/// word budget it declares to the admission layer. The spec is a pure value
/// — constructing the same spec twice yields algorithms with bit-identical
/// behavior, which is what makes engine runs comparable to standalone runs.
struct QuerySpec {
  std::string name;  // Unique within a batch; keys the manifest section.
  QueryKind kind = QueryKind::kRandomOrderTriangles;
  ApproxConfig base;  // epsilon, c, t_guess, seed.
  VertexId num_vertices = 0;
  // Kind-specific knobs (ignored by kinds that don't use them).
  double level_rate = -1.0;   // random-order: cv override.
  double prefix_rate = -1.0;  // random-order / cormode-jowhari: r override.
  std::size_t reservoir_capacity = 1000;  // triest: M.
  /// Declared peak-space budget in words; what the admission layer reserves
  /// against the aggregate budget. 0 = unbudgeted (admitted only when no
  /// aggregate budget is configured).
  std::size_t space_budget_words = 0;
  /// Update-path knobs for sketch-backed kinds (currently arb-f2): kBlock
  /// routes the broker's blocks through the batched kernels, intra_shards
  /// splits each block across that many pool workers. Pure throughput knobs
  /// — estimates and space audits are bit-identical at any setting, so
  /// neither is exported to the deterministic manifest.
  SketchBackend sketch_backend = SketchBackend::kScalar;
  int intra_shards = 1;
  /// Time-decay knobs (turnstile kinds only; window and decay are mutually
  /// exclusive — ValidateSpecWindowing enforces the constraints). All four
  /// change results, so they are spec-fingerprinted and exported to the
  /// deterministic manifest.
  /// window > 0 wraps the estimator in a sliding window over the last
  /// `window_edges` updates, bucketed into `window_buckets` sketch
  /// instances (window_edges must divide evenly).
  std::uint64_t window_edges = 0;
  std::uint64_t window_buckets = 8;
  /// decay_epoch_edges > 0 rescales the sketch by 2^-decay_log2 every
  /// epoch (decay_log2 in [1, 32], exact power-of-two factors only).
  std::uint64_t decay_epoch_edges = 0;
  std::uint32_t decay_log2 = 0;
};

/// Validates the window/decay fields against the kind: windowing requires a
/// turnstile kind, window and decay are mutually exclusive, window_buckets
/// must divide window_edges, and decay needs decay_log2 in [1, 32]. True
/// when consistent; false with a CLI-ready `*error` otherwise.
bool ValidateSpecWindowing(const QuerySpec& spec, std::string* error);

/// A constructed edge-stream query: the algorithm plus a result extractor
/// (each algorithm class exposes its own Result(); the closure erases that).
struct EdgeQuery {
  std::unique_ptr<EdgeStreamAlgorithm> algorithm;
  std::function<Estimate()> result;
};

/// Builds the algorithm for an edge-kind spec. Aborts on adjacency kinds.
EdgeQuery MakeEdgeQuery(const QuerySpec& spec);

/// A constructed adjacency-stream query.
struct AdjacencyQuery {
  std::unique_ptr<AdjacencyStreamAlgorithm> algorithm;
  std::function<Estimate()> result;
};

/// Builds the algorithm for an adjacency-kind spec. Aborts on edge kinds.
AdjacencyQuery MakeAdjacencyQuery(const QuerySpec& spec);

/// A constructed turnstile-stream query.
struct TurnstileQuery {
  std::unique_ptr<TurnstileStreamAlgorithm> algorithm;
  std::function<Estimate()> result;
};

/// Builds the algorithm for a turnstile-kind spec, wrapping it in the
/// sliding-window or decay layer when the spec asks for one. Aborts on
/// non-turnstile kinds and on windowing constraint violations (validate
/// with ValidateSpecWindowing first for a recoverable error).
TurnstileQuery MakeTurnstileQuery(const QuerySpec& spec);

}  // namespace cyclestream::engine

#endif  // CYCLESTREAM_ENGINE_QUERY_H_
