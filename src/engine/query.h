#ifndef CYCLESTREAM_ENGINE_QUERY_H_
#define CYCLESTREAM_ENGINE_QUERY_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/config.h"
#include "graph/types.h"
#include "sketch/sketch_backend.h"
#include "stream/driver.h"

namespace cyclestream::engine {

/// The estimators the multi-query engine can host. A "query" is one small-
/// memory estimator riding the shared pass; the engine fans the same edge
/// (or adjacency) blocks out to every registered query, so N queries cost
/// one stream read per logical pass instead of N.
enum class QueryKind {
  // Edge-stream algorithms (triangles).
  kRandomOrderTriangles,
  kTriest,
  kCormodeJowhari,
  // Edge-stream algorithms (four-cycles).
  kArbF2,
  kArbThreePass,
  kBeraChakrabarti,
  // Adjacency-stream algorithms (four-cycles).
  kAdjDiamond,
  kAdjF2,
  kAdjL2,
};

/// Stable CLI/manifest name ("random-order", "triest", ...).
std::string_view QueryKindName(QueryKind kind);

/// Inverse of QueryKindName; nullopt for unknown names.
std::optional<QueryKind> ParseQueryKind(std::string_view name);

/// True for kinds consuming edge streams (vs adjacency-list streams).
bool IsEdgeKind(QueryKind kind);

/// True for kinds whose state is a linear sketch of the edge stream — state
/// over a partitioned stream merges by addition (MergeFrom) into exactly
/// the whole-stream state, so the kind can run under the multi-process
/// shard coordinator. Currently only arb-f2 (Thm 5.7): its per-vertex
/// accumulators are sums of ±1 / ±1·±1 terms. The others are excluded for
/// cause: random-order/cormode-jowhari condition on stream *positions*
/// (prefix membership), triest's reservoir is an order-dependent sample,
/// and the multi-pass kinds need whole-stream passes.
bool IsShardMergeableKind(QueryKind kind);

/// "triangles" or "c4" — what the estimate approximates.
std::string_view QueryKindTarget(QueryKind kind);

/// One registered query: which estimator, its parameters, its seed, and the
/// word budget it declares to the admission layer. The spec is a pure value
/// — constructing the same spec twice yields algorithms with bit-identical
/// behavior, which is what makes engine runs comparable to standalone runs.
struct QuerySpec {
  std::string name;  // Unique within a batch; keys the manifest section.
  QueryKind kind = QueryKind::kRandomOrderTriangles;
  ApproxConfig base;  // epsilon, c, t_guess, seed.
  VertexId num_vertices = 0;
  // Kind-specific knobs (ignored by kinds that don't use them).
  double level_rate = -1.0;   // random-order: cv override.
  double prefix_rate = -1.0;  // random-order / cormode-jowhari: r override.
  std::size_t reservoir_capacity = 1000;  // triest: M.
  /// Declared peak-space budget in words; what the admission layer reserves
  /// against the aggregate budget. 0 = unbudgeted (admitted only when no
  /// aggregate budget is configured).
  std::size_t space_budget_words = 0;
  /// Update-path knobs for sketch-backed kinds (currently arb-f2): kBlock
  /// routes the broker's blocks through the batched kernels, intra_shards
  /// splits each block across that many pool workers. Pure throughput knobs
  /// — estimates and space audits are bit-identical at any setting, so
  /// neither is exported to the deterministic manifest.
  SketchBackend sketch_backend = SketchBackend::kScalar;
  int intra_shards = 1;
};

/// A constructed edge-stream query: the algorithm plus a result extractor
/// (each algorithm class exposes its own Result(); the closure erases that).
struct EdgeQuery {
  std::unique_ptr<EdgeStreamAlgorithm> algorithm;
  std::function<Estimate()> result;
};

/// Builds the algorithm for an edge-kind spec. Aborts on adjacency kinds.
EdgeQuery MakeEdgeQuery(const QuerySpec& spec);

/// A constructed adjacency-stream query.
struct AdjacencyQuery {
  std::unique_ptr<AdjacencyStreamAlgorithm> algorithm;
  std::function<Estimate()> result;
};

/// Builds the algorithm for an adjacency-kind spec. Aborts on edge kinds.
AdjacencyQuery MakeAdjacencyQuery(const QuerySpec& spec);

}  // namespace cyclestream::engine

#endif  // CYCLESTREAM_ENGINE_QUERY_H_
