#ifndef CYCLESTREAM_ENGINE_SPEC_H_
#define CYCLESTREAM_ENGINE_SPEC_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "engine/query.h"

namespace cyclestream::engine {

/// Text codec for QuerySpec files: one query per line of whitespace-
/// separated `key=value` tokens, `#` comments. This is the `serve` spec
/// format, and also the wire format the shard coordinator uses to hand a
/// resolved query set to its worker processes — so the round trip
/// Write -> Parse must be lossless (doubles are emitted with max_digits10
/// precision and re-parse to the identical bits).
///
/// Keys: name, kind, seed, budget, epsilon, c, t_guess, level_rate,
/// prefix_rate, reservoir, sketch_backend, intra_shards, num_vertices,
/// window, window_buckets, decay_epoch, decay_log2.
///
/// Parsing is strict: every numeric value must be fully consumed (a
/// trailing-garbage token like `seed=5x` is an error, not 5), and the
/// unsigned keys (seed, budget, reservoir, num_vertices, intra_shards)
/// reject a leading `-` instead of wrapping through the unsigned parse.
/// Any malformation fails the whole file with a `<label>:<line>:` error.

/// Parses `in`, appending one QuerySpec per non-empty line. `label` names
/// the source in error messages (a path, or "<spec>" for tests). Returns
/// false and sets `*error` on the first malformed line; `*specs` then holds
/// only the lines before it.
bool ParseSpecStream(std::istream& in, const std::string& label,
                     const QuerySpec& defaults, std::vector<QuerySpec>* specs,
                     std::string* error);

/// Opens and parses a spec file. False with `*error` set if the file cannot
/// be opened or any line is malformed.
bool ParseSpecFile(const std::string& path, const QuerySpec& defaults,
                   std::vector<QuerySpec>* specs, std::string* error);

/// One spec as a parseable line (every key explicit, doubles exact).
std::string FormatSpecLine(const QuerySpec& spec);

/// Writes `specs` as a spec file (one FormatSpecLine per query). False with
/// `*error` set on I/O failure.
bool WriteSpecFile(const std::string& path,
                   const std::vector<QuerySpec>& specs, std::string* error);

/// Order-sensitive fingerprint over every spec field that changes results.
/// Binds shard state files and epoch checkpoints to the exact query set
/// that produced them; excludes the sketch_backend/intra_shards throughput
/// knobs (they never change results, matching the deterministic-manifest
/// rule).
std::uint64_t FingerprintSpecs(const std::vector<QuerySpec>& specs);

}  // namespace cyclestream::engine

#endif  // CYCLESTREAM_ENGINE_SPEC_H_
