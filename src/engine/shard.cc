#include "engine/shard.h"

#include <signal.h>
#include <sys/wait.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "stream/driver.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/io.h"
#include "util/logging.h"
#include "util/serialize.h"

namespace cyclestream::engine {
namespace {

constexpr char kFrameMagic[4] = {'C', 'Y', 'S', 'F'};
constexpr std::size_t kFrameHeaderSize = 4 + 4 + 8 + 4;

void PutLE(std::string* out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t GetLE(const char* p, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

bool KnownFrameType(std::uint32_t raw) {
  return raw == static_cast<std::uint32_t>(FrameType::kHeader) ||
         raw == static_cast<std::uint32_t>(FrameType::kQueryState) ||
         raw == static_cast<std::uint32_t>(FrameType::kFooter) ||
         raw == static_cast<std::uint32_t>(FrameType::kHeartbeat);
}

// Process-wide drain flag. sig_atomic_t + volatile: written from signal
// handlers (RequestWorkerDrain is async-signal-safe), read in the worker
// loop at block/epoch granularity.
volatile std::sig_atomic_t g_drain_requested = 0;

void SleepMs(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

void RequestWorkerDrain() { g_drain_requested = 1; }
bool WorkerDrainRequested() { return g_drain_requested != 0; }
void ClearWorkerDrainRequest() { g_drain_requested = 0; }

void IgnoreSigpipe() {
  // A worker writing its state file while the coordinator is gone — or the
  // coordinator logging to a closed pipe — must surface as an error code,
  // not a silent SIGPIPE death that the supervisor then misclassifies.
  static const bool installed = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)installed;
}

std::string DescribeWaitStatus(int status) {
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    std::string out = "exited " + std::to_string(code);
    if (code == kKilledExitCode) out += " (fault-injection kill sentinel)";
    if (code == kDrainExitCode) out += " (drain acknowledged)";
    if (code == 127) out += " (exec failed)";
    return out;
  }
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = strsignal(sig);
    std::string out = "killed by signal " + std::to_string(sig);
    if (name != nullptr) out += std::string(" (") + name + ")";
    return out;
  }
  return "unrecognized wait status " + std::to_string(status);
}

void AppendFrame(std::string* out, FrameType type, std::string_view payload) {
  out->append(kFrameMagic, sizeof(kFrameMagic));
  PutLE(out, static_cast<std::uint32_t>(type), 4);
  PutLE(out, static_cast<std::uint64_t>(payload.size()), 8);
  PutLE(out, Crc32(payload), 4);
  out->append(payload.data(), payload.size());
}

bool ReadFrame(std::string_view data, std::size_t* pos, FrameType* type,
               std::string_view* payload, std::string* error) {
  auto reject = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (data.size() - *pos < kFrameHeaderSize) {
    return reject("frame truncated: " + std::to_string(data.size() - *pos) +
                  " bytes left, header needs " +
                  std::to_string(kFrameHeaderSize));
  }
  const char* p = data.data() + *pos;
  if (std::memcmp(p, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return reject("bad frame magic");
  }
  const auto raw_type = static_cast<std::uint32_t>(GetLE(p + 4, 4));
  if (!KnownFrameType(raw_type)) {
    return reject("unknown frame type " + std::to_string(raw_type));
  }
  const std::uint64_t size = GetLE(p + 8, 8);
  const auto crc = static_cast<std::uint32_t>(GetLE(p + 16, 4));
  if (size > data.size() - *pos - kFrameHeaderSize) {
    return reject("frame payload overruns the file: declares " +
                  std::to_string(size) + " bytes, " +
                  std::to_string(data.size() - *pos - kFrameHeaderSize) +
                  " available");
  }
  const std::string_view body =
      data.substr(*pos + kFrameHeaderSize, static_cast<std::size_t>(size));
  if (Crc32(body) != crc) {
    return reject("frame CRC mismatch (corrupt payload)");
  }
  *type = static_cast<FrameType>(raw_type);
  *payload = body;
  *pos += kFrameHeaderSize + static_cast<std::size_t>(size);
  return true;
}

std::vector<ShardRange> PartitionStream(std::uint64_t stream_length,
                                        int num_workers) {
  CHECK_GT(num_workers, 0);
  const auto w = static_cast<std::uint64_t>(num_workers);
  const std::uint64_t base = stream_length / w;
  const std::uint64_t extra = stream_length % w;
  std::vector<ShardRange> ranges(static_cast<std::size_t>(w));
  std::uint64_t begin = 0;
  for (std::uint64_t i = 0; i < w; ++i) {
    const std::uint64_t len = base + (i < extra ? 1 : 0);
    ranges[static_cast<std::size_t>(i)] = {begin, begin + len};
    begin += len;
  }
  CHECK_EQ(begin, stream_length);
  return ranges;
}

std::uint64_t TotalRangeEdges(const std::vector<ShardRange>& ranges) {
  std::uint64_t total = 0;
  for (const ShardRange& r : ranges) {
    CHECK_LE(r.begin, r.end);
    total += r.size();
  }
  return total;
}

std::vector<ShardRange> AdvanceRanges(const std::vector<ShardRange>& ranges,
                                      std::uint64_t edges_done) {
  std::vector<ShardRange> left;
  std::uint64_t skip = edges_done;
  for (const ShardRange& r : ranges) {
    if (skip >= r.size()) {
      skip -= r.size();
      continue;
    }
    left.push_back({r.begin + skip, r.end});
    skip = 0;
  }
  CHECK_EQ(skip, 0u) << "edges_done exceeds the ranges' total";
  return left;
}

std::string EncodeShardState(const ShardState& state) {
  std::string out;
  StateWriter h;
  h.U32(state.header.worker_id);
  h.U32(state.header.num_workers);
  h.U64(state.header.stream_fingerprint);
  h.U64(state.header.stream_length);
  h.U64(state.header.spec_fingerprint);
  h.U64(state.header.edges_done);
  h.U64(state.header.epoch);
  h.Size(state.header.ranges.size());
  for (const ShardRange& r : state.header.ranges) {
    h.U64(r.begin);
    h.U64(r.end);
  }
  h.Size(state.query_states.size());
  AppendFrame(&out, FrameType::kHeader, h.str());
  for (const auto& [name, blob] : state.query_states) {
    StateWriter q;
    q.Str(name);
    q.Str(blob);
    AppendFrame(&out, FrameType::kQueryState, q.str());
  }
  StateWriter f;
  f.Size(state.query_states.size());
  AppendFrame(&out, FrameType::kFooter, f.str());
  return out;
}

bool DecodeShardState(std::string_view encoded, ShardState* state,
                      std::string* error) {
  auto reject = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::size_t pos = 0;
  FrameType type;
  std::string_view payload;
  if (!ReadFrame(encoded, &pos, &type, &payload, error)) return false;
  if (type != FrameType::kHeader) {
    return reject("shard state must start with a header frame");
  }
  ShardState out;
  {
    StateReader r(payload);
    out.header.worker_id = r.U32();
    out.header.num_workers = r.U32();
    out.header.stream_fingerprint = r.U64();
    out.header.stream_length = r.U64();
    out.header.spec_fingerprint = r.U64();
    out.header.edges_done = r.U64();
    out.header.epoch = r.U64();
    const std::size_t num_ranges = r.Size();
    if (!r.ok() || num_ranges > r.Remaining() / 16 + 1) {
      return reject("shard state header malformed (range count)");
    }
    out.header.ranges.reserve(num_ranges);
    for (std::size_t i = 0; i < num_ranges; ++i) {
      ShardRange range;
      range.begin = r.U64();
      range.end = r.U64();
      if (range.begin > range.end) {
        return reject("shard state header malformed (inverted range)");
      }
      out.header.ranges.push_back(range);
    }
    const std::size_t num_queries = r.Size();
    if (!r.AtEnd()) {
      return reject("shard state header malformed (trailing bytes)");
    }
    out.query_states.reserve(num_queries);
    for (std::size_t i = 0; i < num_queries; ++i) {
      if (!ReadFrame(encoded, &pos, &type, &payload, error)) return false;
      if (type != FrameType::kQueryState) {
        return reject("expected a query-state frame");
      }
      StateReader q(payload);
      std::string name = q.Str();
      std::string blob = q.Str();
      if (!q.AtEnd()) {
        return reject("query-state frame malformed (trailing bytes)");
      }
      out.query_states.emplace_back(std::move(name), std::move(blob));
    }
  }
  if (!ReadFrame(encoded, &pos, &type, &payload, error)) return false;
  if (type != FrameType::kFooter) {
    return reject("expected a footer frame");
  }
  {
    StateReader f(payload);
    const std::size_t count = f.Size();
    if (!f.AtEnd() || count != out.query_states.size()) {
      return reject("footer count disagrees with the query-state frames "
                    "(truncated or spliced file)");
    }
  }
  if (pos != encoded.size()) {
    return reject("trailing bytes after the footer frame");
  }
  *state = std::move(out);
  return true;
}

bool SaveShardState(const std::string& path, const ShardState& state,
                    std::string* error) {
  // Durable atomic write (util/io.h): EINTR-safe, file fsynced before the
  // rename, parent directory fsynced after — a crash right after the
  // rename cannot lose a checkpoint the supervisor is counting on.
  return io::WriteFileAtomic(path, EncodeShardState(state), error);
}

bool LoadShardState(const std::string& path, ShardState* state,
                    std::string* error) {
  std::string encoded;
  if (!io::ReadFileToString(path, &encoded, error)) return false;
  return DecodeShardState(encoded, state, error);
}

bool AppendHeartbeat(const std::string& path, const HeartbeatRecord& record) {
  StateWriter w;
  w.U32(record.worker_id);
  w.U64(record.edges_done);
  w.U64(record.seq);
  std::string frame;
  AppendFrame(&frame, FrameType::kHeartbeat, w.str());
  std::string error;
  if (!io::AppendToFile(path, frame, &error)) {
    LOG(WARNING) << "heartbeat append failed: " << error;
    return false;
  }
  return true;
}

bool ReadLastHeartbeat(const std::string& path, HeartbeatRecord* record) {
  std::string data;
  if (!io::ReadFileToString(path, &data, nullptr)) return false;
  bool found = false;
  HeartbeatRecord last;
  std::size_t pos = 0;
  FrameType type;
  std::string_view payload;
  // Walk frames until the end or the first damage; a torn tail (killed
  // mid-append) invalidates only the beacons after the damage.
  while (pos < data.size() && ReadFrame(data, &pos, &type, &payload, nullptr)) {
    if (type != FrameType::kHeartbeat) continue;
    StateReader r(payload);
    HeartbeatRecord hb;
    hb.worker_id = r.U32();
    hb.edges_done = r.U64();
    hb.seq = r.U64();
    if (!r.AtEnd()) continue;
    last = hb;
    found = true;
  }
  if (found && record != nullptr) *record = last;
  return found;
}

namespace {

// Serializes the live query states into (name, blob) pairs, spec order.
std::vector<std::pair<std::string, std::string>> CollectQueryStates(
    const std::vector<QuerySpec>& specs, std::vector<EdgeQuery>& queries) {
  std::vector<std::pair<std::string, std::string>> states;
  states.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    StateWriter w;
    CHECK(queries[i].algorithm->SaveState(w))
        << "mergeable query '" << specs[i].name
        << "' must support SaveState";
    states.emplace_back(specs[i].name, w.Take());
  }
  return states;
}

// Validates that a checkpoint belongs to exactly this worker configuration
// and restores every query's state. Returns false (queries untouched — the
// caller rebuilds them) on any mismatch.
bool TryRestoreCheckpoint(const ShardWorkerConfig& config,
                          const ShardState& ckpt,
                          std::vector<EdgeQuery>& queries,
                          std::uint64_t total_edges, std::string* why) {
  const ShardHeader& h = ckpt.header;
  if (h.worker_id != config.worker_id ||
      h.num_workers != config.num_workers ||
      h.stream_fingerprint != config.stream_fingerprint ||
      h.stream_length != config.edges.size() ||
      h.spec_fingerprint != config.spec_fingerprint ||
      h.ranges != config.ranges || h.edges_done > total_edges ||
      ckpt.query_states.size() != config.specs.size()) {
    *why = "checkpoint header does not match this worker configuration";
    return false;
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (ckpt.query_states[i].first != config.specs[i].name) {
      *why = "checkpoint query order does not match the spec order";
      return false;
    }
  }
  // Restore into scratch instances first so a blob that fails validation
  // midway never leaves the worker half-restored.
  std::vector<EdgeQuery> restored;
  restored.reserve(queries.size());
  for (std::size_t i = 0; i < config.specs.size(); ++i) {
    EdgeQuery q = MakeEdgeQuery(config.specs[i]);
    StateReader r(ckpt.query_states[i].second);
    if (!q.algorithm->RestoreState(r) || !r.AtEnd()) {
      *why = "checkpoint state blob rejected for query '" +
             config.specs[i].name + "'";
      return false;
    }
    restored.push_back(std::move(q));
  }
  queries = std::move(restored);
  return true;
}

}  // namespace

ShardWorkerOutcome RunShardWorker(const ShardWorkerConfig& config,
                                  const std::string& state_out_path,
                                  std::string* error) {
  ShardWorkerOutcome out;
  const std::uint64_t total = TotalRangeEdges(config.ranges);
  const std::size_t stream_length = config.edges.size();
  for (const ShardRange& r : config.ranges) {
    CHECK_LE(r.end, stream_length) << "shard range exceeds the stream";
  }

  std::vector<EdgeQuery> queries;
  queries.reserve(config.specs.size());
  for (const QuerySpec& spec : config.specs) {
    CHECK(IsEdgeKind(spec.kind) && IsShardMergeableKind(spec.kind))
        << "shard worker given non-mergeable kind "
        << QueryKindName(spec.kind) << " (query '" << spec.name << "')";
    EdgeQuery q = MakeEdgeQuery(spec);
    // The worker runs exactly one pass over its slice; a multi-pass
    // algorithm could not be merged from partial streams.
    CHECK_EQ(q.algorithm->NumPasses(), 1);
    queries.push_back(std::move(q));
  }

  std::uint64_t done = 0;
  if (config.resume && !config.checkpoint_path.empty()) {
    ShardState ckpt;
    std::string why;
    if (!LoadShardState(config.checkpoint_path, &ckpt, &why)) {
      LOG(WARNING) << "worker " << config.worker_id
                   << ": no usable checkpoint (" << why
                   << "); starting from scratch";
    } else if (!TryRestoreCheckpoint(config, ckpt, queries, total, &why)) {
      LOG(WARNING) << "worker " << config.worker_id
                   << ": checkpoint rejected (" << why
                   << "); starting from scratch";
    } else {
      done = ckpt.header.edges_done;
      out.resumed = true;
    }
  }
  if (!out.resumed) {
    // A resumed worker skips StartPass — it already ran before the
    // checkpoint (no-op for the mergeable kinds, but the contract is the
    // driver's).
    for (EdgeQuery& q : queries) q.algorithm->StartPass(0, stream_length);
  }

  const std::uint64_t epoch = config.epoch_edges;
  const bool checkpoints = epoch > 0 && !config.checkpoint_path.empty();
  std::uint64_t next_ckpt =
      checkpoints ? (done / epoch + 1) * epoch : kNoDeath;
  const std::uint64_t die_at = config.die_after_edges;
  const std::uint64_t hang_at = config.hang_after_edges;

  const bool heartbeats =
      config.heartbeat_edges > 0 && !config.heartbeat_path.empty();
  std::uint64_t hb_seq = 0;
  std::uint64_t next_hb = 0;
  auto beat = [&]() {
    if (!heartbeats) return;
    if (AppendHeartbeat(config.heartbeat_path,
                        {config.worker_id, done, hb_seq})) {
      ++out.heartbeats_written;
    }
    ++hb_seq;
    next_hb = done + config.heartbeat_edges;
  };
  beat();  // Launch beacon: the watchdog sees liveness before edge 1.

  auto write_checkpoint = [&]() -> bool {
    ShardState state;
    state.header.worker_id = config.worker_id;
    state.header.num_workers = config.num_workers;
    state.header.stream_fingerprint = config.stream_fingerprint;
    state.header.stream_length = stream_length;
    state.header.spec_fingerprint = config.spec_fingerprint;
    state.header.edges_done = done;
    state.header.epoch = epoch > 0 ? done / epoch : 0;
    state.header.ranges = config.ranges;
    state.query_states = CollectQueryStates(config.specs, queries);
    std::string why;
    if (!SaveShardState(config.checkpoint_path, state, &why)) {
      LOG(WARNING) << "worker " << config.worker_id
                   << ": checkpoint write failed (" << why << ")";
      return false;
    }
    ++out.checkpoints_written;
    return true;
  };

  std::uint64_t local_base = 0;  // Worker-local index of the range's start.
  for (const ShardRange& range : config.ranges) {
    const std::uint64_t r_size = range.size();
    // Resume support: skip the part of this range already processed.
    std::uint64_t offset = 0;
    if (done > local_base) offset = std::min(done - local_base, r_size);
    while (offset < r_size) {
      if (die_at != kNoDeath && done == die_at) {
        out.edges_done = done;
        return out;  // completed stays false: the injected kill fired.
      }
      if (hang_at != kNoDeath && done == hang_at) {
        // Injected hang: stop progressing AND stop heartbeating — the
        // shape of a wedged subprocess the watchdog must kill.
        for (;;) SleepMs(1000);
      }
      std::uint64_t n =
          std::min<std::uint64_t>(config.block_edges, r_size - offset);
      n = std::min(n, next_ckpt - done);
      if (die_at != kNoDeath && die_at > done) n = std::min(n, die_at - done);
      if (hang_at != kNoDeath && hang_at > done) {
        n = std::min(n, hang_at - done);
      }
      const std::size_t global = static_cast<std::size_t>(range.begin + offset);
      const std::span<const Edge> block =
          config.edges.subspan(global, static_cast<std::size_t>(n));
      // Same fan-out order as the broker's serial path: slot order per
      // block.
      for (EdgeQuery& q : queries) {
        q.algorithm->ProcessEdgeBlock(0, block, global);
      }
      offset += n;
      done += n;
      if (config.throttle_ms_per_block > 0) {
        SleepMs(config.throttle_ms_per_block);
      }
      if (heartbeats && done >= next_hb) beat();
      if (done == next_ckpt) {
        write_checkpoint();
        next_ckpt += epoch;
        if (WorkerDrainRequested()) {
          // Drain lands exactly at an epoch boundary: the checkpoint just
          // written is the resume point; no final state is produced.
          out.drained = true;
          out.edges_done = done;
          return out;
        }
      } else if (!checkpoints && WorkerDrainRequested()) {
        // No checkpoint cadence to align with: stop at the block boundary.
        // Progress is lost, but the resumed wave re-runs deterministically.
        out.drained = true;
        out.edges_done = done;
        return out;
      }
    }
    local_base += r_size;
  }
  if (die_at != kNoDeath && done == die_at && die_at == total) {
    // Killed after the final edge but before finalize/save.
    out.edges_done = done;
    return out;
  }
  CHECK_EQ(done, total);

  for (EdgeQuery& q : queries) q.algorithm->EndPass(0);

  ShardState final_state;
  final_state.header.worker_id = config.worker_id;
  final_state.header.num_workers = config.num_workers;
  final_state.header.stream_fingerprint = config.stream_fingerprint;
  final_state.header.stream_length = stream_length;
  final_state.header.spec_fingerprint = config.spec_fingerprint;
  final_state.header.edges_done = total;
  final_state.header.epoch = epoch > 0 ? total / epoch : 0;
  final_state.header.ranges = config.ranges;
  final_state.query_states = CollectQueryStates(config.specs, queries);
  if (!SaveShardState(state_out_path, final_state, error)) {
    out.edges_done = done;
    return out;
  }
  out.completed = true;
  out.edges_done = done;
  return out;
}

std::string FormatShardRanges(const std::vector<ShardRange>& ranges) {
  std::string out;
  for (const ShardRange& r : ranges) {
    if (!out.empty()) out += ",";
    out += std::to_string(r.begin) + ":" + std::to_string(r.end);
  }
  return out;
}

bool ParseShardRanges(std::string_view text, std::vector<ShardRange>* ranges) {
  std::vector<ShardRange> parsed;
  std::size_t pos = 0;
  auto parse_u64 = [&](char terminator, std::uint64_t* value) {
    const char* begin = text.data() + pos;
    if (pos >= text.size() || *begin < '0' || *begin > '9') return false;
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(begin, &end, 10);
    if (errno == ERANGE || end == begin) return false;
    pos = static_cast<std::size_t>(end - text.data());
    if (terminator == '\0') {
      if (pos != text.size() && text[pos] != ',') return false;
    } else {
      if (pos >= text.size() || text[pos] != terminator) return false;
      ++pos;
    }
    *value = static_cast<std::uint64_t>(v);
    return true;
  };
  while (pos < text.size()) {
    ShardRange r;
    if (!parse_u64(':', &r.begin) || !parse_u64('\0', &r.end) ||
        r.begin > r.end) {
      return false;
    }
    parsed.push_back(r);
    if (pos < text.size()) {
      ++pos;  // Skip the comma.
      if (pos == text.size()) return false;  // Trailing comma.
    }
  }
  if (parsed.empty()) return false;
  *ranges = std::move(parsed);
  return true;
}

}  // namespace cyclestream::engine
