#ifndef CYCLESTREAM_ENGINE_BROKER_H_
#define CYCLESTREAM_ENGINE_BROKER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/config.h"
#include "engine/budget.h"
#include "engine/query.h"
#include "graph/binary_io.h"
#include "stream/order.h"

namespace cyclestream {
class RunManifest;
}  // namespace cyclestream

namespace cyclestream::engine {

/// Abstract block-oriented edge supplier for the broker's shared pass. One
/// Reset() + NextBlock() drain is one physical read of the stream; the
/// broker counts those reads so tests can assert "N queries, one read per
/// logical pass". Blocks are zero-copy views — valid until the next
/// NextBlock()/Reset() on the same source.
class EdgeSource {
 public:
  virtual ~EdgeSource() = default;

  /// Total stream length (edges per full pass). Known up front: every
  /// algorithm's StartPass takes the stream length.
  virtual std::size_t size() const = 0;

  /// Rewinds to the beginning of the stream (start of a physical pass).
  virtual void Reset() = 0;

  /// Returns a pointer to the next block of at most `max_edges` edges and
  /// stores the block's length in `*count`. Returns nullptr (count 0) at
  /// end of stream.
  virtual const Edge* NextBlock(std::size_t max_edges, std::size_t* count) = 0;
};

/// EdgeSource over an in-memory stream (EdgeStream is vector<Edge>).
/// Borrows the vector — it must outlive the source.
class VectorEdgeSource : public EdgeSource {
 public:
  explicit VectorEdgeSource(const EdgeStream& stream) : stream_(stream) {}

  std::size_t size() const override { return stream_.size(); }
  void Reset() override { pos_ = 0; }
  const Edge* NextBlock(std::size_t max_edges, std::size_t* count) override;

 private:
  const EdgeStream& stream_;
  std::size_t pos_ = 0;
};

/// EdgeSource over a validated mmap'd binary edge stream (zero-copy ingest:
/// blocks point straight into the mapping). Borrows the reader.
class BinaryEdgeSource : public EdgeSource {
 public:
  explicit BinaryEdgeSource(const BinaryEdgeReader& reader)
      : reader_(reader) {}

  std::size_t size() const override { return reader_.num_edges(); }
  void Reset() override { pos_ = 0; }
  const Edge* NextBlock(std::size_t max_edges, std::size_t* count) override;

 private:
  const BinaryEdgeReader& reader_;
  std::size_t pos_ = 0;
};

/// Abstract block-oriented turnstile-update supplier — the EdgeSource shape
/// over insert/delete records. Turnstile algorithms are single-pass, but the
/// source keeps Reset() so it slots into the same wave loop.
class TurnstileSource {
 public:
  virtual ~TurnstileSource() = default;

  /// Total stream length (updates per pass).
  virtual std::size_t size() const = 0;

  /// Rewinds to the beginning of the stream.
  virtual void Reset() = 0;

  /// Returns a pointer to the next block of at most `max_updates` updates
  /// and stores the block's length in `*count`. Returns nullptr (count 0)
  /// at end of stream.
  virtual const TurnstileUpdate* NextBlock(std::size_t max_updates,
                                           std::size_t* count) = 0;
};

/// TurnstileSource over an in-memory stream (the shape TurnstileBinaryReader
/// decodes into). Borrows the vector — it must outlive the source.
class VectorTurnstileSource : public TurnstileSource {
 public:
  explicit VectorTurnstileSource(const TurnstileStream& stream)
      : stream_(stream) {}

  std::size_t size() const override { return stream_.size(); }
  void Reset() override { pos_ = 0; }
  const TurnstileUpdate* NextBlock(std::size_t max_updates,
                                   std::size_t* count) override;

 private:
  const TurnstileStream& stream_;
  std::size_t pos_ = 0;
};

/// Broker tuning.
struct BrokerOptions {
  /// Edges (or adjacency lists) per fan-out block. Blocks amortize the
  /// per-dispatch synchronization without affecting results: per-query
  /// delivery order is the stream order regardless of block size.
  std::size_t block_size = 4096;
  /// Admission policy; default (zeros) admits everything in one wave.
  BudgetPolicy budget;
};

/// Result of one query after its wave ran (or didn't).
struct QueryOutcome {
  QuerySpec spec;
  /// Final admission state: kAdmitted (the query ran — possibly after
  /// queuing; see `wave`) or kRejected. kQueued is transient and never the
  /// final state of a completed batch.
  AdmissionOutcome admission = AdmissionOutcome::kRejected;
  /// Which wave ran it (0-based; > 0 means it was queued at least once);
  /// -1 for rejected queries.
  int wave = -1;
  /// The estimator's result; zero-initialized for rejected queries.
  Estimate estimate;
  int passes = 0;  // The algorithm's own NumPasses().
  std::uint64_t items_delivered = 0;  // ProcessEdge/ProcessList calls.
  /// Peak-space component breakdown (empty if the algorithm lacks a
  /// tracker or was rejected).
  std::map<std::string, std::size_t, std::less<>> space_peak_components;
  /// Supervised runs only: the query's wave exhausted its retry budget and
  /// was abandoned without a result (estimate is zero-initialized). The
  /// broker and coordinator never poison — they abort instead.
  bool poisoned = false;
};

/// Aggregate accounting for one broker batch.
struct EngineStats {
  std::uint64_t source_items_read = 0;  // Edges (or lists) read from the
                                        // source, summed over physical
                                        // passes — the "one read serves N
                                        // queries" claim is this counter.
  std::uint64_t items_delivered = 0;    // Process* calls across queries.
  std::uint64_t physical_passes = 0;    // Stream reads (all waves).
  std::uint64_t waves = 0;
  std::uint64_t queries_admitted = 0;
  std::uint64_t queries_queued = 0;   // Admitted in a wave after their first
                                      // offer (still counted in admitted).
  std::uint64_t queries_rejected = 0;
  std::uint64_t budget_peak_words = 0;  // Peak reserved words at any moment.
};

/// Multi-query stream engine: registers N QuerySpecs, then makes a single
/// physical pass (per logical pass number, per wave) over the stream and
/// fans each block out to every admitted query.
///
/// Determinism contract: each query's state is private and its edges arrive
/// in stream order with the same positions RunEdgeStream would use, so each
/// query is bit-identical to a standalone run of the same spec over the same
/// stream — at any thread count and any block size. Parallelism comes from
/// pinning queries to shards (query slot s → shard s mod num_shards, each
/// shard processed serially by one ParallelFor index), which parallelizes
/// *across* queries, never within one.
///
/// Scheduling: queries run in waves. Wave 0 takes every spec the admission
/// controller admits immediately; queued specs retry (in registration
/// order) each time a wave completes and releases its reservations. Each
/// wave costs max(NumPasses among its queries) physical stream reads.
/// Rejected specs never run and report zeroed estimates.
///
/// One-shot: Run*Queries may be called once per broker instance.
class StreamBroker {
 public:
  explicit StreamBroker(const BrokerOptions& options = BrokerOptions());

  /// Registers a query; returns its slot index. Names must be unique (they
  /// key the manifest sections); duplicates abort.
  std::size_t AddQuery(QuerySpec spec);

  /// Runs every registered edge-kind query over `source`. Aborts if any
  /// registered spec has an adjacency kind. Outcomes are in registration
  /// order.
  std::vector<QueryOutcome> RunEdgeQueries(EdgeSource& source);

  /// Convenience overload over an in-memory stream.
  std::vector<QueryOutcome> RunEdgeQueries(const EdgeStream& stream);

  /// Runs every registered adjacency-kind query over `stream`. Aborts if
  /// any registered spec has an edge kind.
  std::vector<QueryOutcome> RunAdjacencyQueries(const AdjacencyStream& stream);

  /// Runs every registered turnstile-kind query over `source`. Aborts if
  /// any registered spec has a non-turnstile kind. The same determinism
  /// contract as the edge path: each query sees the updates in stream order
  /// at the standalone positions, so windowed/decayed estimates are
  /// bit-identical at any thread count and block size.
  std::vector<QueryOutcome> RunTurnstileQueries(TurnstileSource& source);

  /// Convenience overload over an in-memory turnstile stream.
  std::vector<QueryOutcome> RunTurnstileQueries(const TurnstileStream& stream);

  /// Valid after a Run*Queries call.
  const EngineStats& stats() const { return stats_; }

 private:
  template <typename Traits, typename Source>
  std::vector<QueryOutcome> RunBatch(Source& source);

  BrokerOptions options_;
  std::vector<QuerySpec> specs_;
  EngineStats stats_;
  bool ran_ = false;
};

/// Exports a batch into a manifest: aggregate counters under "engine." in
/// the main metrics, plus one per-query section (estimate, space breakdown,
/// admission outcome) keyed by the query's name. Everything exported here
/// is deterministic — it survives DeterministicJson().
void ExportToManifest(const std::vector<QueryOutcome>& outcomes,
                      const EngineStats& stats, RunManifest& manifest);

}  // namespace cyclestream::engine

#endif  // CYCLESTREAM_ENGINE_BROKER_H_
