#include "engine/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>

#include "engine/spec.h"
#include "graph/types.h"
#include "stream/checkpoint.h"
#include "stream/driver.h"
#include "util/check.h"
#include "util/io.h"
#include "util/logging.h"
#include "util/serialize.h"

namespace cyclestream::engine {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ElapsedMs(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(to - from)
          .count());
}

// ---------------------------------------------------------------------------
// Drain latch
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_supervisor_drain = 0;

extern "C" void SupervisorDrainSignalHandler(int /*signum*/) {
  // Both latches: in-process workers poll the worker latch, the
  // supervisor's loops poll this one. Plain sig_atomic_t stores — safe.
  g_supervisor_drain = 1;
  RequestWorkerDrain();
}

// ---------------------------------------------------------------------------
// Watchdog: per-wave liveness monitor for subprocess workers
// ---------------------------------------------------------------------------

// Reads each tracked worker's heartbeat file on a polling cadence and
// SIGKILLs any worker whose (edges_done, seq) has not advanced within the
// shard deadline. The kill turns a hang into an ordinary waitpid-visible
// death, which the reap loop then retries like any crash. Lives for one
// wave run; the destructor joins the thread.
class Watchdog {
 public:
  Watchdog(std::uint64_t deadline_ms, std::uint64_t poll_ms)
      : deadline_ms_(deadline_ms), poll_ms_(poll_ms == 0 ? 1 : poll_ms) {
    thread_ = std::thread([this] { Run(); });
  }

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void Track(pid_t pid, std::string hb_path) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry e;
    e.hb_path = std::move(hb_path);
    e.last_progress = Clock::now();
    entries_[pid] = std::move(e);
  }

  void Untrack(pid_t pid) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(pid);
  }

  std::uint64_t kills() const { return kills_.load(); }

 private:
  struct Entry {
    std::string hb_path;
    HeartbeatRecord last;
    bool have_beat = false;
    Clock::time_point last_progress;
  };

  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(poll_ms_),
                   [this] { return stop_; });
      if (stop_) break;
      const Clock::time_point now = Clock::now();
      std::vector<pid_t> expired;
      for (auto& [pid, e] : entries_) {
        HeartbeatRecord hb;
        if (ReadLastHeartbeat(e.hb_path, &hb)) {
          if (!e.have_beat || hb.edges_done != e.last.edges_done ||
              hb.seq != e.last.seq) {
            e.have_beat = true;
            e.last = hb;
            e.last_progress = now;
          }
        }
        if (ElapsedMs(e.last_progress, now) > deadline_ms_) {
          expired.push_back(pid);
        }
      }
      for (pid_t pid : expired) {
        LOG(WARNING) << "watchdog: worker pid " << pid
                     << " made no heartbeat progress in " << deadline_ms_
                     << " ms; killing it";
        kill(pid, SIGKILL);
        ++kills_;
        entries_.erase(pid);  // The reap loop collects the corpse.
      }
    }
  }

  const std::uint64_t deadline_ms_;
  const std::uint64_t poll_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::map<pid_t, Entry> entries_;
  std::atomic<std::uint64_t> kills_{0};
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// Wave runners
// ---------------------------------------------------------------------------

enum class WaveStatus { kCompleted, kPoisoned, kDrained };

void SleepMs(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool FileExists(const std::string& path) {
  return access(path.c_str(), F_OK) == 0;
}

// Collects already-valid state files (resume fast path). Returns how many
// workers were satisfied without launching anything.
std::size_t CollectExisting(const std::vector<WorkerLaunch>& launches,
                            const std::vector<QuerySpec>& wave_specs,
                            std::vector<ShardState>* states,
                            std::vector<char>* done,
                            SupervisorCounters* counters) {
  std::size_t collected = 0;
  for (std::size_t i = 0; i < launches.size(); ++i) {
    if ((*done)[i]) continue;
    if (!FileExists(launches[i].state_path)) continue;
    if (CollectWorkerState(launches[i], wave_specs, &(*states)[i])) {
      (*done)[i] = 1;
      ++counters->states_collected;
      ++collected;
    }
  }
  return collected;
}

// Prepares launch `i` for its next attempt: past the first launch of a
// fresh run, faults are cleared and the worker resumes from its own epoch
// checkpoint. The heartbeat file is removed so the watchdog only ever sees
// beacons from the live incarnation.
void PrepareAttempt(WorkerLaunch& launch, bool is_retry, bool batch_resume) {
  ShardWorkerConfig& c = launch.config;
  if (is_retry) {
    c.die_after_edges = kNoDeath;
    c.hang_after_edges = kNoDeath;
  }
  c.resume = (is_retry || batch_resume) && !c.checkpoint_path.empty();
  if (!c.heartbeat_path.empty()) std::remove(c.heartbeat_path.c_str());
}

// Classifies one reaped worker's wait status into counters.
void CountExit(int status, SupervisorCounters* counters) {
  if (WIFSIGNALED(status)) {
    ++counters->deaths_by_signal;
  } else if (WIFEXITED(status) && WEXITSTATUS(status) == kKilledExitCode) {
    ++counters->exit_fault_sentinel;
  } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0 &&
             WEXITSTATUS(status) != kDrainExitCode) {
    ++counters->exit_nonzero;
  }
}

// Subprocess wave runner: launch workers, reap with WNOHANG, retry under
// the backoff policy, enforce deadlines, honor drain. Fills `states` for
// every worker on kCompleted; partial on kPoisoned/kDrained.
WaveStatus RunWaveSubprocess(std::vector<WorkerLaunch>& launches,
                             const std::vector<QuerySpec>& wave_specs,
                             const SupervisorOptions& options,
                             const std::string& spec_path, int wave,
                             bool batch_resume,
                             std::vector<ShardState>* states,
                             SupervisorCounters* counters) {
  const std::size_t w = launches.size();
  states->assign(w, ShardState{});
  std::vector<char> done(w, 0);
  if (batch_resume) {
    CollectExisting(launches, wave_specs, states, &done, counters);
  }

  const std::string binary =
      ResolveWorkerBinary(options.plan.worker_binary);
  const std::uint64_t poll_ms = options.deadline.poll_interval_ms == 0
                                    ? 1
                                    : options.deadline.poll_interval_ms;

  std::unique_ptr<Watchdog> watchdog;
  if (options.deadline.shard_deadline_ms > 0) {
    watchdog = std::make_unique<Watchdog>(options.deadline.shard_deadline_ms,
                                          poll_ms);
  }

  struct Track {
    pid_t pid = -1;
    bool running = false;
    int attempts = 0;
    Clock::time_point eligible = Clock::time_point::min();
  };
  std::vector<Track> track(w);

  auto all_done = [&] {
    for (std::size_t i = 0; i < w; ++i) {
      if (!done[i]) return false;
    }
    return true;
  };

  auto reap_one = [&](std::size_t i, int wait_flags) -> bool {
    int status = 0;
    pid_t got;
    do {
      got = waitpid(track[i].pid, &status, wait_flags);
    } while (got < 0 && errno == EINTR);
    if (got == 0) return false;  // Still running (WNOHANG).
    CHECK_EQ(got, track[i].pid) << "waitpid failed for supervised worker";
    track[i].running = false;
    if (watchdog) watchdog->Untrack(track[i].pid);
    CountExit(status, counters);
    const bool exited_zero = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    const bool drain_ack =
        WIFEXITED(status) && WEXITSTATUS(status) == kDrainExitCode;
    if (exited_zero &&
        CollectWorkerState(launches[i], wave_specs, &(*states)[i])) {
      done[i] = 1;
      ++counters->states_collected;
    } else if (!drain_ack) {
      LOG(WARNING) << "wave " << wave << " worker " << i << ": "
                   << DescribeWaitStatus(status) << " (attempt "
                   << track[i].attempts << " of "
                   << options.retry.max_attempts << ")";
      if (track[i].attempts < options.retry.max_attempts) {
        const std::uint64_t backoff = ComputeBackoffMs(
            options.retry, wave, launches[i].config.worker_id,
            track[i].attempts + 1);
        counters->backoff_ms_total += backoff;
        track[i].eligible =
            Clock::now() + std::chrono::milliseconds(
                               options.sleep_in_backoff ? backoff : 0);
      }
    }
    return true;
  };

  auto kill_running = [&](int signum) {
    for (std::size_t i = 0; i < w; ++i) {
      if (track[i].running) kill(track[i].pid, signum);
    }
  };

  Clock::time_point round_start = Clock::now();
  for (;;) {
    if (all_done()) {
      if (watchdog) counters->deadline_kills += watchdog->kills();
      return WaveStatus::kCompleted;
    }

    if (SupervisorDrainRequested()) {
      // Forward the drain: workers checkpoint at their next epoch boundary
      // and exit kDrainExitCode. The watchdog stays armed — a worker that
      // hangs instead of draining is still killed and reaped.
      kill_running(SIGTERM);
      for (std::size_t i = 0; i < w; ++i) {
        while (track[i].running) {
          if (!reap_one(i, WNOHANG)) SleepMs(poll_ms);
        }
      }
      if (watchdog) counters->deadline_kills += watchdog->kills();
      return WaveStatus::kDrained;
    }

    // Launch every worker whose backoff has expired.
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < w; ++i) {
      if (done[i] || track[i].running ||
          track[i].attempts >= options.retry.max_attempts ||
          now < track[i].eligible) {
        continue;
      }
      const bool is_retry = track[i].attempts > 0;
      PrepareAttempt(launches[i], is_retry, batch_resume);
      track[i].pid = SpawnShardWorker(BuildWorkerArgv(
          binary, options.plan.stream_path, spec_path, launches[i]));
      track[i].running = true;
      ++track[i].attempts;
      ++counters->workers_launched;
      if (is_retry) ++counters->retries;
      if (watchdog && !launches[i].config.heartbeat_path.empty()) {
        watchdog->Track(track[i].pid, launches[i].config.heartbeat_path);
      }
    }

    // Poison check: a worker with no attempts left and no valid state
    // condemns the wave. Remaining workers are killed — their output
    // cannot be used without the poisoned shard anyway.
    for (std::size_t i = 0; i < w; ++i) {
      if (!done[i] && !track[i].running &&
          track[i].attempts >= options.retry.max_attempts) {
        LOG(ERROR) << "wave " << wave << " worker " << i << " failed "
                   << options.retry.max_attempts
                   << " times; poisoning the wave";
        kill_running(SIGKILL);
        for (std::size_t j = 0; j < w; ++j) {
          if (track[j].running) reap_one(j, 0);
        }
        if (watchdog) counters->deadline_kills += watchdog->kills();
        return WaveStatus::kPoisoned;
      }
    }

    // Reap.
    bool reaped = false;
    for (std::size_t i = 0; i < w; ++i) {
      if (track[i].running && reap_one(i, WNOHANG)) reaped = true;
    }

    // Wave deadline: one round outliving this kills every runner (the
    // reap pass above then schedules their retries). Timer restarts so
    // each retry round gets the full allowance.
    if (options.deadline.wave_deadline_ms > 0 &&
        ElapsedMs(round_start, Clock::now()) >
            options.deadline.wave_deadline_ms) {
      LOG(WARNING) << "wave " << wave << " exceeded its deadline of "
                   << options.deadline.wave_deadline_ms
                   << " ms; killing still-running workers";
      for (std::size_t i = 0; i < w; ++i) {
        if (track[i].running) {
          kill(track[i].pid, SIGKILL);
          ++counters->deadline_kills;
        }
      }
      round_start = Clock::now();
    }

    if (!reaped) SleepMs(poll_ms);
  }
}

// In-process wave runner: the same retry ladder, sequential (no deadlines
// — a hung in-process worker would wedge the supervisor itself, which is
// why DeadlinePolicy is subprocess-only).
WaveStatus RunWaveInProcess(std::vector<WorkerLaunch>& launches,
                            const std::vector<QuerySpec>& wave_specs,
                            const SupervisorOptions& options, int wave,
                            bool batch_resume,
                            std::vector<ShardState>* states,
                            SupervisorCounters* counters) {
  const std::size_t w = launches.size();
  states->assign(w, ShardState{});
  std::vector<char> done(w, 0);
  if (batch_resume) {
    CollectExisting(launches, wave_specs, states, &done, counters);
  }

  for (std::size_t i = 0; i < w; ++i) {
    if (done[i]) continue;
    for (int attempt = 1; attempt <= options.retry.max_attempts; ++attempt) {
      if (SupervisorDrainRequested()) return WaveStatus::kDrained;
      if (attempt > 1) {
        const std::uint64_t backoff = ComputeBackoffMs(
            options.retry, wave, launches[i].config.worker_id, attempt);
        counters->backoff_ms_total += backoff;
        if (options.sleep_in_backoff) SleepMs(backoff);
        ++counters->retries;
      }
      PrepareAttempt(launches[i], /*is_retry=*/attempt > 1, batch_resume);
      ++counters->workers_launched;
      std::string error;
      const ShardWorkerOutcome outcome =
          RunShardWorker(launches[i].config, launches[i].state_path, &error);
      if (outcome.drained) return WaveStatus::kDrained;
      if (!outcome.completed && !error.empty()) {
        LOG(WARNING) << "wave " << wave << " worker " << i
                     << " failed in-process: " << error;
      }
      if (outcome.completed &&
          CollectWorkerState(launches[i], wave_specs, &(*states)[i])) {
        done[i] = 1;
        ++counters->states_collected;
        break;
      }
    }
    if (!done[i]) {
      LOG(ERROR) << "wave " << wave << " worker " << i << " failed "
                 << options.retry.max_attempts
                 << " times; poisoning the wave";
      return WaveStatus::kPoisoned;
    }
  }
  return WaveStatus::kCompleted;
}

// ---------------------------------------------------------------------------
// Daemon manifest codec
// ---------------------------------------------------------------------------

std::string EncodeDaemonManifest(const DaemonManifest& m) {
  StateWriter h;
  h.U64(m.stream_fingerprint);
  h.U64(m.stream_length);
  h.U64(m.batch_spec_fingerprint);
  h.U32(m.num_workers);
  h.U64(m.epoch_edges);
  h.U64(m.block_edges);
  h.U64(m.aggregate_words);
  h.U64(m.per_query_words);
  h.U32(m.waves_started);
  h.U8(m.drained);
  h.U8(m.completed);
  h.Size(m.pending_slots.size());
  for (std::uint64_t slot : m.pending_slots) h.U64(slot);
  std::string out;
  AppendFrame(&out, FrameType::kHeader, h.str());
  StateWriter f;
  f.U32(m.waves_started);
  AppendFrame(&out, FrameType::kFooter, f.str());
  return out;
}

}  // namespace

std::string DaemonManifestPath(const std::string& shard_dir) {
  return shard_dir + "/daemon.manifest";
}

bool SaveDaemonManifest(const std::string& path,
                        const DaemonManifest& manifest, std::string* error) {
  // Durable atomic write — this file is what a post-crash resume trusts.
  return io::WriteFileAtomic(path, EncodeDaemonManifest(manifest), error);
}

bool LoadDaemonManifest(const std::string& path, DaemonManifest* manifest,
                        std::string* error) {
  auto reject = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::string encoded;
  if (!io::ReadFileToString(path, &encoded, error)) return false;
  std::size_t pos = 0;
  FrameType type;
  std::string_view payload;
  if (!ReadFrame(encoded, &pos, &type, &payload, error)) return false;
  if (type != FrameType::kHeader) {
    return reject("daemon manifest must start with a header frame");
  }
  DaemonManifest out;
  StateReader r(payload);
  out.stream_fingerprint = r.U64();
  out.stream_length = r.U64();
  out.batch_spec_fingerprint = r.U64();
  out.num_workers = r.U32();
  out.epoch_edges = r.U64();
  out.block_edges = r.U64();
  out.aggregate_words = r.U64();
  out.per_query_words = r.U64();
  out.waves_started = r.U32();
  out.drained = r.U8();
  out.completed = r.U8();
  const std::size_t pending = r.Size();
  if (!r.ok() || pending > r.Remaining() / 8 + 1) {
    return reject("daemon manifest malformed (pending count)");
  }
  for (std::size_t i = 0; i < pending; ++i) {
    out.pending_slots.push_back(r.U64());
  }
  if (!r.ok() || !r.AtEnd()) {
    return reject("daemon manifest malformed (trailing header bytes)");
  }
  if (!ReadFrame(encoded, &pos, &type, &payload, error)) return false;
  if (type != FrameType::kFooter) return reject("expected a footer frame");
  StateReader f(payload);
  if (f.U32() != out.waves_started || !f.AtEnd()) {
    return reject("daemon manifest footer disagrees with the header");
  }
  if (pos != encoded.size()) {
    return reject("trailing bytes after the daemon manifest footer");
  }
  *manifest = std::move(out);
  return true;
}

// ---------------------------------------------------------------------------
// Public drain control
// ---------------------------------------------------------------------------

void RequestSupervisorDrain() { g_supervisor_drain = 1; }
bool SupervisorDrainRequested() { return g_supervisor_drain != 0; }
void ClearSupervisorDrainRequest() { g_supervisor_drain = 0; }

void InstallDrainHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = SupervisorDrainSignalHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // No SA_RESTART: poll sleeps should wake immediately.
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

std::uint64_t ComputeBackoffMs(const RetryPolicy& policy, int wave,
                               std::uint32_t worker, int attempt) {
  CHECK_GE(attempt, 2) << "backoff precedes a retry, not the first launch";
  const int shift = attempt - 2;
  std::uint64_t base = policy.base_backoff_ms;
  // Saturating base << shift, clamped to the cap.
  if (shift >= 63 || (base != 0 && base > (policy.backoff_cap_ms >> shift))) {
    base = policy.backoff_cap_ms;
  } else {
    base = std::min(policy.backoff_cap_ms, base << shift);
  }
  const std::uint64_t span = policy.base_backoff_ms / 2 + 1;
  const std::uint64_t jitter =
      Mix64(policy.jitter_seed ^ Mix64(static_cast<std::uint64_t>(wave) ^
                                       (std::uint64_t{worker} << 20) ^
                                       (std::uint64_t(attempt) << 52))) %
      span;
  return base + jitter;
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

bool RunSupervisedBatch(const std::vector<QuerySpec>& specs,
                        std::span<const Edge> edges,
                        const SupervisorOptions& options,
                        SupervisedBatchResult* result, std::string* error) {
  auto reject = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  CheckShardableSpecs(specs);
  IgnoreSigpipe();
  const ShardPlanOptions& plan = options.plan;
  CHECK_GT(plan.num_workers, 0);
  CHECK(!plan.shard_dir.empty())
      << "SupervisorOptions::plan.shard_dir is required";
  CHECK_GE(options.retry.max_attempts, 1);
  const bool subprocess = plan.launch == ShardLaunch::kSubprocess;
  if (subprocess) {
    CHECK(!plan.stream_path.empty())
        << "subprocess workers need --stream (a .bin path)";
  } else if (options.deadline.shard_deadline_ms > 0 ||
             options.deadline.wave_deadline_ms > 0) {
    LOG(WARNING) << "deadlines are subprocess-only; ignoring them for the "
                    "in-process launch";
  }

  std::uint64_t heartbeat_edges = options.heartbeat_edges;
  if (heartbeat_edges == 0 && options.deadline.shard_deadline_ms > 0) {
    heartbeat_edges = plan.block_edges;  // Beacon at least once per block.
  }

  SupervisedBatchResult out;
  out.resumed = options.resume;
  out.outcomes.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    out.outcomes[i].spec = specs[i];
  }
  EngineStats& stats = out.stats;

  const std::uint64_t stream_fp = FingerprintEdgeStream(edges);
  const std::uint64_t batch_fp = FingerprintSpecs(specs);
  const std::string manifest_path = DaemonManifestPath(plan.shard_dir);

  DaemonManifest base;
  base.stream_fingerprint = stream_fp;
  base.stream_length = edges.size();
  base.batch_spec_fingerprint = batch_fp;
  base.num_workers = static_cast<std::uint32_t>(plan.num_workers);
  base.epoch_edges = plan.epoch_edges;
  base.block_edges = plan.block_edges;
  base.aggregate_words = plan.budget.aggregate_words;
  base.per_query_words = plan.budget.per_query_words;

  DaemonManifest prev;
  if (options.resume) {
    if (!LoadDaemonManifest(manifest_path, &prev, error)) return false;
    if (prev.stream_fingerprint != stream_fp ||
        prev.stream_length != edges.size()) {
      return reject("daemon manifest is for a different stream");
    }
    if (prev.batch_spec_fingerprint != batch_fp) {
      return reject("daemon manifest is for a different query batch "
                    "(spec fingerprint mismatch)");
    }
    if (prev.num_workers != base.num_workers ||
        prev.epoch_edges != base.epoch_edges ||
        prev.block_edges != base.block_edges ||
        prev.aggregate_words != base.aggregate_words ||
        prev.per_query_words != base.per_query_words) {
      return reject("daemon manifest execution plan mismatch (resume must "
                    "reuse the original workers/epoch/block/budget)");
    }
  }

  // The broker's exact admission loop — identical offers against an
  // identical controller ⇒ identical waves, with or without supervision,
  // interrupted or not.
  AdmissionController controller(plan.budget);
  std::vector<char> queued_before(specs.size(), 0);
  std::vector<std::size_t> pending(specs.size());
  std::iota(pending.begin(), pending.end(), std::size_t{0});

  int wave = 0;
  while (!pending.empty()) {
    std::vector<std::size_t> admitted;
    std::vector<std::size_t> queued;
    for (std::size_t slot : pending) {
      switch (controller.Offer(specs[slot].space_budget_words)) {
        case AdmissionOutcome::kAdmitted:
          admitted.push_back(slot);
          break;
        case AdmissionOutcome::kQueued:
          queued.push_back(slot);
          if (!queued_before[slot]) {
            queued_before[slot] = 1;
            ++stats.queries_queued;
          }
          break;
        case AdmissionOutcome::kRejected:
          out.outcomes[slot].admission = AdmissionOutcome::kRejected;
          ++stats.queries_rejected;
          break;
      }
    }
    if (admitted.empty()) {
      CHECK(queued.empty()) << "admission deadlock: queued queries with an "
                               "empty wave";
      break;
    }

    // Resume cross-check at the interruption frontier: the replayed
    // admission queue must match what the drained daemon persisted.
    if (options.resume && prev.waves_started > 0 &&
        wave == static_cast<int>(prev.waves_started) - 1) {
      std::vector<std::uint64_t> replayed(queued.begin(), queued.end());
      if (replayed != prev.pending_slots) {
        return reject("daemon manifest admission queue mismatch at wave " +
                      std::to_string(wave) +
                      " (different batch or budget policy?)");
      }
    }

    ++stats.waves;

    std::vector<QuerySpec> wave_specs;
    wave_specs.reserve(admitted.size());
    for (std::size_t slot : admitted) wave_specs.push_back(specs[slot]);
    const std::uint64_t spec_fp = FingerprintSpecs(wave_specs);

    const std::vector<ShardRange> partition =
        PartitionStream(edges.size(), plan.num_workers);
    const std::string prefix =
        plan.shard_dir + "/w" + std::to_string(wave);

    std::string spec_path;
    if (subprocess) {
      spec_path = prefix + ".specs";
      std::string werr;
      CHECK(WriteSpecFile(spec_path, wave_specs, &werr)) << werr;
    }

    std::vector<WorkerLaunch> launches(
        static_cast<std::size_t>(plan.num_workers));
    for (std::size_t i = 0; i < launches.size(); ++i) {
      ShardWorkerConfig& c = launches[i].config;
      c.specs = wave_specs;
      c.edges = edges;
      c.ranges = {partition[i]};
      c.worker_id = static_cast<std::uint32_t>(i);
      c.num_workers = static_cast<std::uint32_t>(plan.num_workers);
      c.stream_fingerprint = stream_fp;
      c.spec_fingerprint = spec_fp;
      c.block_edges = plan.block_edges;
      c.epoch_edges = plan.epoch_edges;
      c.throttle_ms_per_block = options.throttle_ms_per_block;
      if (plan.epoch_edges > 0) {
        c.checkpoint_path = prefix + "-s" + std::to_string(i) + ".ckpt";
      }
      if (subprocess && heartbeat_edges > 0) {
        c.heartbeat_edges = heartbeat_edges;
        c.heartbeat_path = prefix + "-s" + std::to_string(i) + ".hb";
      }
      if (wave == 0 && !options.resume) {
        if (plan.kill_worker >= 0 &&
            static_cast<std::size_t>(plan.kill_worker) == i) {
          c.die_after_edges = plan.kill_after_edges;
        }
        if (subprocess && options.hang_worker >= 0 &&
            static_cast<std::size_t>(options.hang_worker) == i) {
          c.hang_after_edges = options.hang_after_edges;
        }
      }
      launches[i].state_path = prefix + "-s" + std::to_string(i) + ".state";
    }

    // Persist the frontier BEFORE launching: a crash at any point after
    // this line resumes into exactly this wave.
    {
      DaemonManifest m = base;
      m.waves_started = static_cast<std::uint32_t>(wave) + 1;
      m.pending_slots.assign(queued.begin(), queued.end());
      std::string werr;
      CHECK(SaveDaemonManifest(manifest_path, m, &werr)) << werr;
    }

    if (SupervisorDrainRequested()) {
      // Drain landed between waves: nothing in flight, just mark it.
      DaemonManifest m = base;
      m.waves_started = static_cast<std::uint32_t>(wave) + 1;
      m.pending_slots.assign(queued.begin(), queued.end());
      m.drained = 1;
      std::string werr;
      CHECK(SaveDaemonManifest(manifest_path, m, &werr)) << werr;
      out.drained = true;
      ++out.counters.drains;
      break;
    }

    std::vector<ShardState> states;
    const WaveStatus status =
        subprocess
            ? RunWaveSubprocess(launches, wave_specs, options, spec_path,
                                wave, options.resume, &states, &out.counters)
            : RunWaveInProcess(launches, wave_specs, options, wave,
                               options.resume, &states, &out.counters);

    if (status == WaveStatus::kDrained) {
      DaemonManifest m = base;
      m.waves_started = static_cast<std::uint32_t>(wave) + 1;
      m.pending_slots.assign(queued.begin(), queued.end());
      m.drained = 1;
      std::string werr;
      CHECK(SaveDaemonManifest(manifest_path, m, &werr)) << werr;
      out.drained = true;
      ++out.counters.drains;
      break;
    }

    if (status == WaveStatus::kPoisoned) {
      ++out.counters.waves_poisoned;
      out.poisoned_waves.push_back(wave);
      for (std::size_t slot : admitted) {
        out.outcomes[slot].admission = AdmissionOutcome::kAdmitted;
        out.outcomes[slot].wave = wave;
        out.outcomes[slot].poisoned = true;
        controller.Release(specs[slot].space_budget_words);
        ++stats.queries_admitted;
      }
      pending = std::move(queued);
      ++wave;
      continue;  // The daemon outlives the wave.
    }

    std::vector<EdgeQuery> merged = MergeShardStates(wave_specs, states, {});
    FinalizeShardWave(admitted, wave, edges.size(), merged, out.outcomes,
                      stats);
    ++out.counters.waves_completed;

    for (std::size_t slot : admitted) {
      controller.Release(specs[slot].space_budget_words);
      ++stats.queries_admitted;
    }
    pending = std::move(queued);
    ++wave;
  }

  if (!out.drained) {
    DaemonManifest m = base;
    m.waves_started = static_cast<std::uint32_t>(wave);
    m.completed = 1;
    std::string werr;
    CHECK(SaveDaemonManifest(manifest_path, m, &werr)) << werr;
  }
  stats.budget_peak_words = controller.peak_reserved_words();
  *result = std::move(out);
  return true;
}

void ExportSupervisorCounters(const SupervisorCounters& c,
                              RunManifest& manifest) {
  MetricsRegistry& m = manifest.metrics();
  auto put = [&m](const char* name, std::uint64_t v) {
    m.SetExecution(name, static_cast<std::int64_t>(v));
  };
  put("supervisor.workers_launched", c.workers_launched);
  put("supervisor.retries", c.retries);
  put("supervisor.backoff_ms_total", c.backoff_ms_total);
  put("supervisor.deadline_kills", c.deadline_kills);
  put("supervisor.waves_poisoned", c.waves_poisoned);
  put("supervisor.drains", c.drains);
  put("supervisor.exit_fault_sentinel", c.exit_fault_sentinel);
  put("supervisor.exit_nonzero", c.exit_nonzero);
  put("supervisor.deaths_by_signal", c.deaths_by_signal);
  put("supervisor.states_collected", c.states_collected);
  put("supervisor.waves_completed", c.waves_completed);
}

}  // namespace cyclestream::engine
