#include "engine/budget.h"

#include "util/check.h"

namespace cyclestream::engine {

namespace {
constexpr std::string_view kReservedComponent = "reserved";
}  // namespace

std::string_view AdmissionOutcomeName(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      return "admitted";
    case AdmissionOutcome::kQueued:
      return "queued";
    case AdmissionOutcome::kRejected:
      return "rejected";
  }
  CHECK(false) << "unreachable AdmissionOutcome";
  return "";
}

AdmissionController::AdmissionController(const BudgetPolicy& policy)
    : policy_(policy) {}

AdmissionOutcome AdmissionController::Offer(std::size_t declared_words) {
  if (declared_words == 0) {
    // Unbudgeted query: nothing to reserve. Fine without an aggregate cap;
    // under one, admitting it would make the cap unenforceable.
    return policy_.aggregate_words == 0 ? AdmissionOutcome::kAdmitted
                                        : AdmissionOutcome::kRejected;
  }
  if (policy_.per_query_words > 0 && declared_words > policy_.per_query_words) {
    return AdmissionOutcome::kRejected;
  }
  if (policy_.aggregate_words > 0) {
    if (declared_words > policy_.aggregate_words) {
      return AdmissionOutcome::kRejected;  // No wave can ever fit it.
    }
    if (tracker_.Current() + declared_words > policy_.aggregate_words) {
      return AdmissionOutcome::kQueued;
    }
  }
  tracker_.Charge(kReservedComponent, declared_words);
  ledger_.insert(declared_words);
  return AdmissionOutcome::kAdmitted;
}

void AdmissionController::Release(std::size_t declared_words) {
  if (declared_words == 0) return;  // Unbudgeted queries hold no reservation.
  const auto it = ledger_.find(declared_words);
  CHECK(it != ledger_.end())
      << "AdmissionController::Release(" << declared_words
      << "): no outstanding reservation of that size ("
      << ledger_.size() << " live reservation(s), " << tracker_.Current()
      << " words reserved) — double release or size mismatch";
  ledger_.erase(it);
  tracker_.Release(kReservedComponent, declared_words);
}

}  // namespace cyclestream::engine
