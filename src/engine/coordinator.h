#ifndef CYCLESTREAM_ENGINE_COORDINATOR_H_
#define CYCLESTREAM_ENGINE_COORDINATOR_H_

#include <sys/types.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/broker.h"
#include "engine/query.h"
#include "engine/shard.h"

namespace cyclestream::engine {

/// Coordinator half of the multi-process engine (DESIGN.md §14): partitions
/// the stream into W contiguous shard ranges, runs one worker per shard
/// (in-process for hermetic tests, or `cyclestream_cli shard-worker`
/// subprocesses), and folds the workers' serialized states in fixed shard
/// order with the exact-integer MergeFrom path.
///
/// Determinism contract: every query's merged state — and therefore every
/// estimate, space audit, and deterministic manifest field — is
/// bit-identical to the single-process StreamBroker run of the same specs
/// over the same stream, at any W. The argument is the ShardedSketch one,
/// crossed over the process boundary: shard states are sums of exact
/// integer deltas (each well under 2^53, held in doubles), the stream
/// partition is contiguous and exhaustive, and the fold visits shards in
/// fixed order 0..W−1 — so the merged accumulators receive exactly the
/// additions the unsharded pass performs, and integer addition is exact.
/// W = 1 is the oracle: one worker over the whole stream, merged with
/// nothing.
///
/// Fault tolerance: with an epoch cadence configured, each worker
/// checkpoints its state every epoch_edges slice-local edges (atomic
/// write), and the coordinator records an epoch manifest up front. A worker
/// that dies is relaunched alone, resuming from its last checkpoint — live
/// workers and finished shards are never re-run. A coordinator restart can
/// instead call ResumeShardedBatch, which folds the per-shard checkpoints
/// as a base state and re-partitions only the leftover ranges — among a
/// *different* worker count if desired (state linearity makes any
/// repartition of the unprocessed suffix merge to the same totals).

/// How workers are executed.
enum class ShardLaunch {
  kInProcess,   // Direct function calls, sequential: hermetic, no fork.
  kSubprocess,  // fork/exec `<worker_binary> shard-worker ...` per shard.
};

/// One sharded batch's execution plan.
struct ShardPlanOptions {
  int num_workers = 1;
  /// Edges per ProcessEdgeBlock inside each worker (throughput only).
  std::size_t block_edges = 4096;
  /// Admission policy — identical semantics to BrokerOptions::budget (the
  /// coordinator replays the broker's exact offer sequence).
  BudgetPolicy budget;
  /// Worker checkpoint cadence in slice-local edges; 0 disables
  /// checkpoints (and with them, recovery).
  std::uint64_t epoch_edges = 0;
  /// Directory for spec files, worker state files, checkpoints, and the
  /// epoch manifest. Must exist. Required (CHECKed).
  std::string shard_dir;
  ShardLaunch launch = ShardLaunch::kInProcess;
  /// Worker executable for kSubprocess; empty resolves /proc/self/exe.
  std::string worker_binary;
  /// Binary edge-stream path handed to subprocess workers; required for
  /// kSubprocess (they map the stream themselves).
  std::string stream_path;
  /// Fault injection: worker `kill_worker` dies (exit kKilledExitCode)
  /// after `kill_after_edges` slice-local edges on its first launch of the
  /// first wave; the coordinator then recovers it. -1 disables.
  int kill_worker = -1;
  std::uint64_t kill_after_edges = 0;
};

/// Outcome of a sharded batch: the broker-shaped results plus recovery
/// accounting (execution-dependent — kept out of deterministic manifests).
struct ShardBatchResult {
  std::vector<QueryOutcome> outcomes;  // Slot order, like the broker's.
  EngineStats stats;
  std::uint64_t workers_launched = 0;
  std::uint64_t workers_recovered = 0;
  bool resumed = false;  // Result came from ResumeShardedBatch.
};

/// Runs `specs` over `edges` under the sharded engine. Every spec must be a
/// shard-mergeable edge kind (IsShardMergeableKind; CHECKed). Admission,
/// waves, outcomes, and stats replicate StreamBroker::RunEdgeQueries
/// exactly. When epoch_edges > 0 an epoch manifest for the first wave is
/// written to `<shard_dir>/epoch.manifest`.
ShardBatchResult RunShardedBatch(const std::vector<QuerySpec>& specs,
                                 std::span<const Edge> edges,
                                 const ShardPlanOptions& options);

// ---------------------------------------------------------------------------
// Coordinator epoch manifest + W-change restore
// ---------------------------------------------------------------------------

/// What a dead coordinator needs to finish the batch: the partition it
/// launched and where each shard's checkpoints live. Written once at the
/// start of the (first) wave; per-shard *progress* lives in each shard's
/// own checkpoint file, so the manifest never needs rewriting — there is no
/// global synchronized cut, and none is needed: state linearity lets the
/// restore fold whatever each shard's last checkpoint holds and re-run just
/// the leftover ranges.
struct EpochManifest {
  std::uint32_t num_workers = 1;
  std::uint64_t stream_fingerprint = 0;
  std::uint64_t stream_length = 0;
  std::uint64_t spec_fingerprint = 0;  // Of the wave's admitted specs.
  std::uint64_t epoch_edges = 0;
  std::vector<std::vector<ShardRange>> worker_ranges;
  /// Checkpoint file names, relative to the manifest's directory.
  std::vector<std::string> checkpoint_files;
};

/// CRC-framed save/load (same frame protocol as shard states; strict
/// validation, never a partial read).
bool SaveEpochManifest(const std::string& path, const EpochManifest& manifest,
                       std::string* error);
bool LoadEpochManifest(const std::string& path, EpochManifest* manifest,
                       std::string* error);

/// Coordinator-restart restore: reads `manifest_path` (+ the per-shard
/// checkpoints it names), folds the checkpointed states as the base,
/// re-partitions the unprocessed leftover ranges among
/// `options.num_workers` fresh workers (any W — it need not match the
/// original), runs them, and merges base + workers in fixed order. The
/// batch must have been single-wave (admission replay of `specs` under
/// `options.budget` must admit everything in wave 0 and match the
/// manifest's spec fingerprint) — multi-wave batches recover in-flight via
/// the coordinator's own worker relaunch instead. Returns false with
/// `*error` on any validation failure; aborts nothing.
bool ResumeShardedBatch(const std::string& manifest_path,
                        const std::vector<QuerySpec>& specs,
                        std::span<const Edge> edges,
                        const ShardPlanOptions& options,
                        ShardBatchResult* result, std::string* error);

// ---------------------------------------------------------------------------
// Worker-execution toolkit
// ---------------------------------------------------------------------------
// The launch/collect/merge/finalize primitives the coordinator's own wave
// loop is built from, exported so the supervision layer
// (engine/supervisor.h) can drive the *same* workers under a richer policy
// (retry budgets, backoff, deadlines, drain) without duplicating the
// determinism-critical state handling.

/// One worker's launch parameters for a wave.
struct WorkerLaunch {
  ShardWorkerConfig config;
  std::string state_path;
};

/// Resolves the worker executable: `configured` when non-empty, else
/// /proc/self/exe (aborts if that cannot be resolved).
std::string ResolveWorkerBinary(const std::string& configured);

/// Builds the `shard-worker` argv for a subprocess launch. The worker
/// recomputes the stream and spec fingerprints itself from the files — a
/// cheap end-to-end check that both codecs round-trip.
std::vector<std::string> BuildWorkerArgv(const std::string& binary,
                                         const std::string& stream_path,
                                         const std::string& spec_path,
                                         const WorkerLaunch& launch);

/// fork/execs one worker, returning its pid. A failed exec surfaces as the
/// child exiting 127 — the caller's wait loop treats it as a dead worker.
pid_t SpawnShardWorker(const std::vector<std::string>& argv);

/// Loads + validates one worker's final state. False (with a warning) on
/// any damage or mismatch — the caller treats the worker as dead and
/// relaunches it, so a stale or torn file can delay a run but never
/// corrupt a merge.
bool CollectWorkerState(const WorkerLaunch& launch,
                        const std::vector<QuerySpec>& wave_specs,
                        ShardState* state);

/// Folds `states` (fixed order) into one merged query per spec. `base`
/// queries, when provided, seed the fold (the checkpoint-restore paths);
/// otherwise shard 0's state is the seed.
std::vector<EdgeQuery> MergeShardStates(
    const std::vector<QuerySpec>& wave_specs,
    const std::vector<ShardState>& states, std::vector<EdgeQuery> base);

/// Fills the broker-shaped outcome/stats fields for one completed wave.
/// `merged` holds one query per admitted slot, in slot order.
void FinalizeShardWave(const std::vector<std::size_t>& admitted, int wave,
                       std::size_t stream_length,
                       std::vector<EdgeQuery>& merged,
                       std::vector<QueryOutcome>& outcomes,
                       EngineStats& stats);

/// CHECKs that `specs` is non-empty, unique-named, and every kind is a
/// shard-mergeable edge kind.
void CheckShardableSpecs(const std::vector<QuerySpec>& specs);

}  // namespace cyclestream::engine

#endif  // CYCLESTREAM_ENGINE_COORDINATOR_H_
