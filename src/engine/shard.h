#ifndef CYCLESTREAM_ENGINE_SHARD_H_
#define CYCLESTREAM_ENGINE_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/query.h"
#include "graph/types.h"

namespace cyclestream::engine {

/// Shard-side half of the multi-process engine (DESIGN.md §14): the frame
/// protocol worker states travel over, the contiguous stream partitioner,
/// and the worker loop itself. The coordinator half lives in
/// engine/coordinator.h.
///
/// A worker's output — and its epoch checkpoints — are sequences of frames:
///
///   frame := magic "CYSF" | type(u32) | payload_size(u64) |
///            crc32(payload)(u32) | payload
///
/// A state file is exactly: one kHeader frame (who produced it, over which
/// slice of which stream, how far it got), one kQueryState frame per query
/// in spec order (name + SaveState blob), one kFooter frame (query count
/// again — a truncation tripwire). Every field is validated on load and
/// every payload is CRC-guarded; a file failing any check is rejected
/// whole — the coordinator never merges a partial or damaged state.

// ---------------------------------------------------------------------------
// Frame protocol
// ---------------------------------------------------------------------------

enum class FrameType : std::uint32_t {
  kHeader = 1,
  kQueryState = 2,
  kFooter = 3,
  /// Liveness beacon appended by a running worker (heartbeat file, not a
  /// state file): worker_id + edges_done + sequence number. The
  /// supervisor's watchdog reads the last valid one to decide whether a
  /// subprocess is making progress or has hung past its deadline.
  kHeartbeat = 4,
};

/// Appends one framed payload to `out`.
void AppendFrame(std::string* out, FrameType type, std::string_view payload);

/// Reads the frame starting at `data.substr(*pos)`. On success stores the
/// type and payload (a view into `data`), advances `*pos` past the frame,
/// and returns true. On any malformation (truncation, bad magic, CRC
/// mismatch) returns false with `*error` set; `*pos` is unspecified.
bool ReadFrame(std::string_view data, std::size_t* pos, FrameType* type,
               std::string_view* payload, std::string* error);

// ---------------------------------------------------------------------------
// Stream partitioning
// ---------------------------------------------------------------------------

/// A contiguous half-open slice [begin, end) of stream positions.
struct ShardRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t size() const { return end - begin; }
  friend bool operator==(const ShardRange&, const ShardRange&) = default;
};

/// Splits [0, stream_length) into `num_workers` contiguous ranges in shard
/// order: shard i gets length/W edges, the first length%W shards one extra.
/// Deterministic and exhaustive (ranges abut and cover the stream exactly);
/// when W exceeds the edge count the tail shards are empty ranges, which
/// workers and the merge handle as the identity.
std::vector<ShardRange> PartitionStream(std::uint64_t stream_length,
                                        int num_workers);

/// Total edges across `ranges`.
std::uint64_t TotalRangeEdges(const std::vector<ShardRange>& ranges);

/// The ranges left after a worker has processed its first `edges_done`
/// edges (ranges are consumed as one flat sequence). Used by the W-change
/// restore path to re-partition unprocessed leftovers among new workers.
std::vector<ShardRange> AdvanceRanges(const std::vector<ShardRange>& ranges,
                                      std::uint64_t edges_done);

// ---------------------------------------------------------------------------
// Shard state files (worker output + per-shard epoch checkpoints)
// ---------------------------------------------------------------------------

/// Header frame contents: identity + provenance of a shard state.
struct ShardHeader {
  std::uint32_t worker_id = 0;
  std::uint32_t num_workers = 1;
  /// Fingerprint/length of the *whole* stream (not the slice) — shard
  /// states are only mergeable when every worker saw slices of the same
  /// stream.
  std::uint64_t stream_fingerprint = 0;
  std::uint64_t stream_length = 0;
  /// FingerprintSpecs of the query set the worker ran, in order.
  std::uint64_t spec_fingerprint = 0;
  /// Progress through the flattened ranges: == TotalRangeEdges(ranges) in a
  /// final state, less in an epoch checkpoint.
  std::uint64_t edges_done = 0;
  /// Completed epochs (edges_done / epoch_edges for checkpoints; informative
  /// only in final states).
  std::uint64_t epoch = 0;
  std::vector<ShardRange> ranges;

  friend bool operator==(const ShardHeader&, const ShardHeader&) = default;
};

/// A decoded shard state file: header + (name, SaveState blob) per query in
/// spec order.
struct ShardState {
  ShardHeader header;
  std::vector<std::pair<std::string, std::string>> query_states;
};

/// Encodes to the frame sequence described above.
std::string EncodeShardState(const ShardState& state);

/// Strict decode: header/state/footer frame sequence, CRC per frame, footer
/// count must match, no trailing bytes. Returns false with `*error` set on
/// any damage; `*state` is untouched in that case.
bool DecodeShardState(std::string_view encoded, ShardState* state,
                      std::string* error);

/// Atomic write (tmp + rename, like SaveSnapshot): a crash mid-write never
/// leaves a torn file where a previous good checkpoint was.
bool SaveShardState(const std::string& path, const ShardState& state,
                    std::string* error);

/// Loads and strictly decodes. False with `*error` set if missing,
/// unreadable, or malformed.
bool LoadShardState(const std::string& path, ShardState* state,
                    std::string* error);

// ---------------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------------

/// One liveness beacon. `seq` increments per beacon within one launch;
/// progress is any change in (edges_done, seq) — a relaunched worker
/// restarts seq, which still reads as progress.
struct HeartbeatRecord {
  std::uint32_t worker_id = 0;
  std::uint64_t edges_done = 0;
  std::uint64_t seq = 0;

  friend bool operator==(const HeartbeatRecord&,
                         const HeartbeatRecord&) = default;
};

/// Appends one CRC-framed kHeartbeat record to `path` (O_APPEND,
/// EINTR-safe, best-effort — a failed beacon is logged, never fatal).
/// Returns false on I/O failure.
bool AppendHeartbeat(const std::string& path, const HeartbeatRecord& record);

/// Reads the last fully valid heartbeat frame in `path`. A torn tail (the
/// worker was killed mid-append) is tolerated: frames before the damage
/// still count. False if the file is missing or holds no valid heartbeat.
bool ReadLastHeartbeat(const std::string& path, HeartbeatRecord* record);

// ---------------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------------

/// No fault injected.
inline constexpr std::uint64_t kNoDeath = ~std::uint64_t{0};

/// Exit code of a worker that stopped at an epoch boundary because drain
/// was requested (checkpoint written, no final state). Distinct from the
/// fault-injection sentinel kKilledExitCode (86, stream/driver.h).
inline constexpr int kDrainExitCode = 85;

/// Process-wide drain request consumed by RunShardWorker: when set, the
/// worker checkpoints at the next epoch boundary (immediately at the next
/// block boundary if checkpoints are off) and returns with drained=true.
/// RequestWorkerDrain is async-signal-safe — the CLI's SIGTERM/SIGINT
/// handler calls it directly.
void RequestWorkerDrain();
bool WorkerDrainRequested();
void ClearWorkerDrainRequest();  // Tests and post-drain resume paths.

/// Installs SIG_IGN for SIGPIPE once per process. Called by every
/// coordinator/supervisor/worker entry point: a worker whose parent died
/// must fail through its exit status, not die silently mid-write.
void IgnoreSigpipe();

/// Human-readable waitpid() status: distinguishes a normal exit, a nonzero
/// exit, the exit-86 fault-injection sentinel, the exit-85 drain
/// acknowledgement, and death by signal (with the signal name).
std::string DescribeWaitStatus(int status);

/// One worker's marching orders. Shared by the in-process launch (tests)
/// and the `shard-worker` CLI subcommand (subprocess launch) so both run
/// literally the same loop.
struct ShardWorkerConfig {
  /// The wave's admitted queries, in slot order. Every kind must satisfy
  /// IsShardMergeableKind (CHECKed): merge correctness rests on state
  /// linearity.
  std::vector<QuerySpec> specs;
  /// The whole stream; the worker touches only its ranges but needs global
  /// positions and the full length (StartPass contract).
  std::span<const Edge> edges;
  std::vector<ShardRange> ranges;
  std::uint32_t worker_id = 0;
  std::uint32_t num_workers = 1;
  /// Precomputed FingerprintEdgeStream(edges) — computed once by the
  /// coordinator, not per worker.
  std::uint64_t stream_fingerprint = 0;
  std::uint64_t spec_fingerprint = 0;
  /// Edges per block handed to ProcessEdgeBlock (bit-identity contract:
  /// results never depend on blocking).
  std::size_t block_edges = 4096;
  /// Checkpoint cadence in worker-local edges; 0 disables checkpoints.
  std::uint64_t epoch_edges = 0;
  /// Where epoch checkpoints go ("" = none even if epoch_edges > 0).
  std::string checkpoint_path;
  /// Resume from checkpoint_path if it holds a valid matching checkpoint;
  /// an invalid/missing one falls back to a from-scratch run (warned),
  /// mirroring the driver's never-partial-restore rule.
  bool resume = false;
  /// Fault injection: stop (reporting completed=false) after processing
  /// this many worker-local edges — epoch checkpoints up to that point are
  /// still written, so a multiple of epoch_edges kills at a boundary and
  /// anything else kills mid-epoch. kNoDeath disables.
  std::uint64_t die_after_edges = kNoDeath;
  /// Fault injection: hang forever (stop processing, stop heartbeating,
  /// never exit) after this many worker-local edges — the supervisor's
  /// deadline/watchdog prey. Only meaningful for subprocess workers; an
  /// in-process hang would wedge the caller. kNoDeath disables.
  std::uint64_t hang_after_edges = kNoDeath;
  /// Heartbeat cadence in worker-local edges; 0 disables. Beacons are
  /// appended to `heartbeat_path` (one at launch, then every cadence).
  std::uint64_t heartbeat_edges = 0;
  std::string heartbeat_path;
  /// Test/demo throttle: sleep this long after each processed block.
  /// Slows the worker without changing any result (drain/deadline smoke
  /// tests need a worker that is reliably mid-wave when the signal lands).
  std::uint64_t throttle_ms_per_block = 0;
};

struct ShardWorkerOutcome {
  bool completed = false;     // False iff a fault or drain stopped the run.
  bool resumed = false;       // A checkpoint was restored.
  bool drained = false;       // Stopped at an epoch boundary on drain
                              // request (checkpoint written if enabled).
  std::uint64_t edges_done = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t heartbeats_written = 0;
};

/// Runs the worker loop: construct (or restore) the queries, stream the
/// ranges through them in blocks, checkpoint each epoch, and — on
/// completion — EndPass and write the final state to `state_out_path`.
/// Aborts (CHECK) on programmer errors: non-mergeable kinds, ranges out of
/// bounds. I/O failures surface through `*error` with completed=false.
ShardWorkerOutcome RunShardWorker(const ShardWorkerConfig& config,
                                  const std::string& state_out_path,
                                  std::string* error);

/// Formats ranges as "begin:end[,begin:end...]" for the worker command
/// line; ParseShardRanges inverts it (strict — false on any malformation).
std::string FormatShardRanges(const std::vector<ShardRange>& ranges);
bool ParseShardRanges(std::string_view text, std::vector<ShardRange>* ranges);

}  // namespace cyclestream::engine

#endif  // CYCLESTREAM_ENGINE_SHARD_H_
