// Social-network triangle census: the motivating application of streaming
// triangle counting (paper §1). A Barabási–Albert "social" graph streams by
// once in random order; we estimate the triangle count and the global
// clustering coefficient (transitivity = 3T / #wedges) at a fraction of the
// graph's memory footprint, and compare against the practical TRIEST
// reservoir baseline at equal space.
//
//   ./build/examples/social_triangle_census --n 20000 --deg 8

#include <cstdint>
#include <iostream>

#include "baselines/triest.h"
#include "core/random_order_triangles.h"
#include "gen/generators.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "stream/order.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cyclestream;
  FlagParser flags(argc, argv);
  const VertexId n = static_cast<VertexId>(flags.GetInt("n", 20000));
  const std::size_t deg = static_cast<std::size_t>(flags.GetInt("deg", 8));
  const std::uint64_t seed = flags.GetInt("seed", 7);

  Rng gen(seed);
  const EdgeList graph = BarabasiAlbert(n, deg, gen);
  const Graph g(graph);
  const std::uint64_t exact = CountTriangles(g);
  const std::uint64_t wedges = CountWedges(g);
  std::cout << "BA graph: n=" << g.num_vertices() << " m=" << g.num_edges()
            << " triangles=" << exact
            << " transitivity=" << Transitivity(g) << "\n\n";

  Rng rng(seed + 1);
  const EdgeStream stream = MakeRandomOrderStream(graph, rng);

  // §2.1 one-pass random-order counter.
  RandomOrderTriangleCounter::Params params;
  params.base.epsilon = flags.GetDouble("epsilon", 0.2);
  params.base.c = flags.GetDouble("c", 1.0);
  params.base.t_guess = static_cast<double>(std::max<std::uint64_t>(exact, 1));
  params.base.seed = seed + 2;
  params.num_vertices = g.num_vertices();
  params.level_rate = flags.GetDouble("level_rate", 8.0);
  const Estimate ours = CountTrianglesRandomOrder(stream, params);

  // TRIEST at the same word budget.
  Triest::Params tparams;
  tparams.reservoir_capacity = std::max<std::size_t>(10, ours.space_words / 2);
  tparams.variant = Triest::Variant::kImproved;
  tparams.seed = seed + 3;
  Triest triest(tparams);
  RunEdgeStream(triest, stream);
  const Estimate theirs = triest.Result();

  Table table({"algorithm", "estimate", "rel.err", "space(words)",
               "transitivity"});
  auto row = [&](const char* name, const Estimate& e) {
    table.AddRow({name, Table::Num(e.value, 1),
                  Table::Pct(std::abs(e.value - double(exact)) /
                             std::max(1.0, double(exact))),
                  Table::Int(static_cast<std::int64_t>(e.space_words)),
                  Table::Num(3.0 * e.value / double(wedges), 4)});
  };
  table.AddRow({"exact (offline)", Table::Int(exact), "0.00%",
                Table::Int(2 * static_cast<std::int64_t>(g.num_edges())),
                Table::Num(Transitivity(g), 4)});
  row("mcgregor-vorotnikova sec2.1", ours);
  row("triest-impr (equal space)", theirs);
  table.Print(std::cout);
  return 0;
}
