// Quickstart: estimate the triangle count of a graph from a single pass over
// a randomly ordered edge stream (the §2.1 algorithm, Theorem 2.1), and
// compare with the exact count.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--graph path/to/edgelist.txt]

#include <iostream>

#include "core/random_order_triangles.h"
#include "gen/generators.h"
#include "graph/datasets.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "stream/order.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace cyclestream;
  FlagParser flags(argc, argv);
  const std::string path = flags.GetString("graph", "");

  // 1. Get a graph: a SNAP-format edge list from disk, the embedded Zachary
  //    karate club (--karate), or a generated scale-free graph by default —
  //    the streaming guarantees are asymptotic, so the default demo uses a
  //    graph large enough for the sampling rates to matter.
  EdgeList graph;
  if (!path.empty()) {
    auto loaded = LoadEdgeListText(path);
    if (!loaded) {
      std::cerr << "could not load " << path << "\n";
      return 1;
    }
    graph = std::move(*loaded);
  } else if (flags.GetBool("karate", false)) {
    graph = KarateClub();
  } else {
    Rng gen(flags.GetInt("seed", 42));
    graph = BarabasiAlbert(static_cast<VertexId>(flags.GetInt("n", 10000)), 6, gen);
  }
  const Graph g(graph);
  std::cout << "graph: n=" << g.num_vertices() << " m=" << g.num_edges()
            << "\n";

  // 2. Ground truth (offline, O(m^{3/2})).
  const std::uint64_t exact = CountTriangles(g);
  std::cout << "exact triangles: " << exact << "\n";

  // 3. Stream the edges in random order and estimate with the one-pass
  //    algorithm. t_guess is the advance estimate of T that the paper's
  //    convention requires; here we feed the true value.
  Rng rng(flags.GetInt("seed", 42));
  const EdgeStream stream = MakeRandomOrderStream(graph, rng);

  RandomOrderTriangleCounter::Params params;
  params.base.epsilon = flags.GetDouble("epsilon", 0.1);
  params.base.c = flags.GetDouble("c", 2.0);
  params.base.t_guess = flags.GetDouble("t_guess", std::max<double>(1.0, exact));
  params.base.seed = flags.GetInt("seed", 42);
  params.num_vertices = graph.num_vertices();

  const Estimate est = CountTrianglesRandomOrder(stream, params);
  std::cout << "streaming estimate: " << est.value << " (rel.err "
            << (exact > 0 ? std::abs(est.value - double(exact)) / exact : 0.0)
            << ")\n"
            << "peak space (words): " << est.space_words << " vs "
            << 2 * g.num_edges() << " words for the full graph\n";
  if (est.space_words >= 2 * g.num_edges()) {
    std::cout << "note: on graphs this small the sampling rates saturate and "
                 "the algorithm stores everything;\n      run with a larger "
                 "graph (or see bench/exp_e2) for the m/sqrt(T) regime.\n";
  }
  return 0;
}
