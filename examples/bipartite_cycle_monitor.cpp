// Four-cycle monitoring on a bipartite interaction graph. In
// user-item/author-paper networks the 4-cycle ("butterfly") count is the
// basic clustering signal — there are no triangles. This example builds a
// co-purchase-like graph with planted dense blocks (diamonds of varied
// size), streams its adjacency lists twice, and estimates the 4-cycle count
// with the §4.1 diamond algorithm (Theorem 4.2).
//
//   ./build/examples/bipartite_cycle_monitor --blocks 40

#include <cstdint>
#include <iostream>

#include "core/diamond_counter.h"
#include "gen/generators.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "stream/order.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cyclestream;
  FlagParser flags(argc, argv);
  const std::uint64_t seed = flags.GetInt("seed", 11);
  const std::size_t blocks = static_cast<std::size_t>(flags.GetInt("blocks", 40));

  // Background bipartite noise plus planted co-purchase blocks: a block in
  // which h users all bought the same pair of items is a size-h diamond and
  // contributes C(h,2) four-cycles.
  Rng gen(seed);
  EdgeList graph = CompleteBipartite(60, 60);  // Dense core.
  graph = PlantDiamonds(std::move(graph),
                        {DiamondSpec{4, static_cast<std::size_t>(blocks)},
                         DiamondSpec{12, static_cast<std::size_t>(blocks / 4)},
                         DiamondSpec{40, 2}},
                        gen);
  const Graph g(graph);
  const std::uint64_t exact = CountFourCycles(g);
  std::cout << "bipartite graph: n=" << g.num_vertices()
            << " m=" << g.num_edges() << " four-cycles=" << exact << "\n";
  std::cout << "diamond size histogram (size -> count):\n";
  for (const auto& [size, count] : DiamondHistogram(g)) {
    if (size >= 4) std::cout << "  " << size << " -> " << count << "\n";
  }
  std::cout << "\n";

  Rng rng(seed + 1);
  const AdjacencyStream stream = MakeAdjacencyStream(g, rng);

  DiamondFourCycleCounter::Params params;
  params.base.epsilon = flags.GetDouble("epsilon", 0.2);
  params.base.c = flags.GetDouble("c", 1.0);
  params.base.t_guess = static_cast<double>(std::max<std::uint64_t>(exact, 1));
  params.base.seed = seed + 2;
  params.num_vertices = g.num_vertices();
  const Estimate est = CountFourCyclesDiamond(stream, params);

  Table table({"quantity", "value"});
  table.AddRow({"exact four-cycles", Table::Int(exact)});
  table.AddRow({"diamond-estimator (2-pass adj list)", Table::Num(est.value, 1)});
  table.AddRow({"relative error",
                Table::Pct(std::abs(est.value - double(exact)) /
                           std::max(1.0, double(exact)))});
  table.AddRow({"peak space (words)", Table::Int(static_cast<std::int64_t>(est.space_words))});
  table.AddRow({"full graph (words)", Table::Int(2 * static_cast<std::int64_t>(g.num_edges()))});
  table.Print(std::cout);
  if (est.space_words >= 2 * g.num_edges()) {
    std::cout << "note: toy-scale run; sampling saturates. See "
                 "bench/exp_e5_adj_diamonds for the space-scaling regime.\n";
  }
  return 0;
}
