// Dynamic 4-cycle tracking under edge insertions AND deletions — the §5.3
// algorithm (Theorem 5.7) is the only one in the paper that survives the
// turnstile setting ("this algorithm would also work in the dynamic graph
// setting"). We simulate a churning dense interaction graph: edges arrive,
// a random subset is later retracted, and the tracker's estimate follows
// the true count using only Õ(ε⁻²·n) counters.
//
//   ./build/examples/dynamic_cycle_tracker --n 220 --p 0.3

#include <cstdint>
#include <iostream>
#include <vector>

#include "core/arb_f2_counter.h"
#include "gen/generators.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cyclestream;
  FlagParser flags(argc, argv);
  const VertexId n = static_cast<VertexId>(flags.GetInt("n", 220));
  const double p = flags.GetDouble("p", 0.3);
  const std::uint64_t seed = flags.GetInt("seed", 3);

  Rng gen(seed);
  const EdgeList graph = ErdosRenyiGnp(n, p, gen);

  ArbF2FourCycleCounter::Params params;
  params.base.epsilon = flags.GetDouble("epsilon", 0.15);
  params.base.seed = seed + 1;
  params.num_vertices = n;
  params.copies_per_group = static_cast<int>(flags.GetInt("copies", 400));
  ArbF2FourCycleCounter tracker(params);

  Table table({"phase", "live edges", "exact C4", "tracked C4", "rel.err"});
  auto report = [&](const char* phase, const std::vector<Edge>& live) {
    EdgeList snapshot(n);
    for (const Edge& e : live) snapshot.Add(e.u, e.v);
    snapshot.Finalize();
    const double exact = static_cast<double>(CountFourCycles(Graph(snapshot)));
    const double tracked = tracker.Result().value;
    table.AddRow({phase, Table::Int(static_cast<std::int64_t>(live.size())),
                  Table::Num(exact, 0), Table::Num(tracked, 0),
                  Table::Pct(exact > 0 ? std::abs(tracked - exact) / exact
                                       : tracked)});
  };

  // Phase 1: everything arrives.
  std::vector<Edge> live;
  for (const Edge& e : graph.edges()) {
    tracker.Insert(e);
    live.push_back(e);
  }
  report("after inserts", live);

  // Phase 2: a third of the edges churn out.
  Rng churn(seed + 2);
  std::vector<Edge> survivors;
  for (const Edge& e : live) {
    if (churn.Bernoulli(1.0 / 3.0)) {
      tracker.Delete(e);
    } else {
      survivors.push_back(e);
    }
  }
  report("after deletions", survivors);

  // Phase 3: a fresh wave of edges on the same vertex set.
  Rng wave(seed + 3);
  const EdgeList extra = ErdosRenyiGnp(n, p / 3.0, wave);
  for (const Edge& e : extra.edges()) {
    // Avoid double-inserting surviving edges.
    bool already = false;
    for (const Edge& s : survivors) {
      if (s == e) {
        already = true;
        break;
      }
    }
    if (!already) {
      tracker.Insert(e);
      survivors.push_back(e);
    }
  }
  report("after new wave", survivors);

  table.Print(std::cout);
  std::cout << "\ntracker space: " << tracker.Result().space_words
            << " words (3n counters per estimator copy)\n";
  return 0;
}
