// E1 — Theorem 2.1: one-pass (1+ε) triangle counting in random-order
// streams, vs the prior state of the art (Cormode–Jowhari's (3+ε)) and the
// practical TRIEST baseline at matched space. Includes the heavy-edge
// ablation (rough estimator only) and t-guess misestimate rows.
//
// Expected shape (paper): all algorithms do fine on graphs without heavy
// edges; on the book workload (one edge in T/2 triangles) Cormode–Jowhari
// collapses toward a constant-factor underestimate while the §2.1 heavy-edge
// machinery holds the (1+ε) line.

#include <iostream>

#include "baselines/cormode_jowhari.h"
#include "baselines/triest.h"
#include "bench/bench_common.h"
#include "core/random_order_triangles.h"
#include "gen/generators.h"

namespace cyclestream {
namespace {

struct Workload {
  std::string name;
  EdgeList graph;
  double t_exact = 0;
};

std::vector<Workload> BuildWorkloads(bool quick) {
  const VertexId n = quick ? 6000 : 12000;
  const std::size_t m = quick ? 24000 : 48000;
  std::vector<Workload> workloads;
  {
    Rng gen(1);
    EdgeList g = PlantTriangles(ErdosRenyiGnm(n, m - 3 * (n / 2), gen), n / 2, gen);
    workloads.push_back({"er+planted", std::move(g)});
  }
  {
    Rng gen(2);
    workloads.push_back({"ba-social", BarabasiAlbert(n, 4, gen)});
  }
  {
    Rng gen(3);
    workloads.push_back({"chung-lu", ChungLuPowerLaw(n, 8.0, 2.3, gen)});
  }
  {
    Rng gen(4);
    EdgeList g = PlantBook(ErdosRenyiGnm(n, m, gen), n / 4, gen);
    workloads.push_back({"book-heavy", std::move(g)});
  }
  for (Workload& w : workloads) {
    w.t_exact = static_cast<double>(CountTriangles(Graph(w.graph)));
  }
  return workloads;
}

}  // namespace

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  bench::ExperimentContext ctx("E1", flags);
  const bool quick = flags.GetBool("quick", false);
  const int trials = static_cast<int>(flags.GetInt("trials", quick ? 7 : 15));
  const double epsilon = flags.GetDouble("epsilon", 0.2);
  const bool csv = flags.GetBool("csv", false);

  bench::PrintHeader(
      "E1: random-order triangle counting (Theorem 2.1)",
      "(1+eps) approximation in O~(eps^-2 m/sqrt(T)) space; breaks the "
      "factor-3 barrier of Cormode-Jowhari",
      "ER+planted, BA, Chung-Lu, and a heavy-edge 'book' graph");

  Table table({"workload", "T", "algorithm", "med.err", "p90.err",
               "med.space(w)"});
  for (const auto& w : BuildWorkloads(quick)) {
    const double t = std::max(1.0, w.t_exact);
    std::size_t our_space = 0;

    auto add = [&](const std::string& algo, const bench::TrialStats& s) {
      table.AddRow({w.name, Table::Int(static_cast<std::int64_t>(w.t_exact)),
                    algo, Table::Pct(s.rel_error.median),
                    Table::Pct(s.rel_error.p90),
                    Table::Int(static_cast<std::int64_t>(s.space_words.median))});
    };

    // Ours (§2.1).
    auto ours = bench::RunTrials(trials, w.t_exact, [&](int trial) {
      Rng rng(100 + trial);
      const EdgeStream stream = MakeRandomOrderStream(w.graph, rng);
      RandomOrderTriangleCounter::Params params;
      params.base.epsilon = epsilon;
      params.base.c = 2.0;
      params.base.t_guess = t;
      params.base.seed = 9000 + trial;
      params.num_vertices = w.graph.num_vertices();
      params.level_rate = 8.0;  // Sublinear regime (see E2).
      const Estimate e = CountTrianglesRandomOrder(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    add("mv20-sec2.1", ours);
    our_space = static_cast<std::size_t>(ours.space_words.median);

    // Ablation: prefix/rough estimator only (no heavy-edge accounting) —
    // emulated by treating the heavy threshold as infinite via a huge
    // t_guess for classification... instead: Cormode-Jowhari with no cap is
    // the natural 'no heavy handling' reference; the capped CJ is the real
    // baseline below. The ablation here disables the candidate set by
    // setting level_rate to ~0 so P stays empty.
    auto ablation = bench::RunTrials(trials, w.t_exact, [&](int trial) {
      Rng rng(200 + trial);
      const EdgeStream stream = MakeRandomOrderStream(w.graph, rng);
      RandomOrderTriangleCounter::Params params;
      params.base.epsilon = epsilon;
      params.base.c = 2.0;
      params.base.t_guess = t;
      params.base.seed = 9100 + trial;
      params.num_vertices = w.graph.num_vertices();
      params.level_rate = 1e-9;  // V_i empty: no heavy-edge candidates.
      const Estimate e = CountTrianglesRandomOrder(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    add("ablation:no-heavy", ablation);

    // Cormode-Jowhari (3+eps) baseline.
    auto cj = bench::RunTrials(trials, w.t_exact, [&](int trial) {
      Rng rng(300 + trial);
      const EdgeStream stream = MakeRandomOrderStream(w.graph, rng);
      CormodeJowhariCounter::Params params;
      params.base.epsilon = epsilon;
      params.base.c = 2.0;
      params.base.t_guess = t;
      params.base.seed = 9200 + trial;
      const Estimate e = CountTrianglesCormodeJowhari(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    add("cormode-jowhari", cj);

    // TRIEST-impr at matched space.
    auto triest = bench::RunTrials(trials, w.t_exact, [&](int trial) {
      Rng rng(400 + trial);
      const EdgeStream stream = MakeRandomOrderStream(w.graph, rng);
      Triest::Params params;
      params.reservoir_capacity = std::max<std::size_t>(16, our_space / 2);
      params.variant = Triest::Variant::kImproved;
      params.seed = 9300 + trial;
      Triest algo(params);
      RunEdgeStream(algo, stream);
      const Estimate e = algo.Result();
      return std::make_pair(e.value, e.space_words);
    });
    add("triest-impr", triest);

    // Robustness: 4x t-guess misestimates (ours only).
    for (const double factor : {0.25, 4.0}) {
      auto mis = bench::RunTrials(trials, w.t_exact, [&](int trial) {
        Rng rng(500 + trial);
        const EdgeStream stream = MakeRandomOrderStream(w.graph, rng);
        RandomOrderTriangleCounter::Params params;
        params.base.epsilon = epsilon;
        params.base.c = 2.0;
        params.base.t_guess = std::max(1.0, t * factor);
        params.base.seed = 9400 + trial;
        params.num_vertices = w.graph.num_vertices();
        params.level_rate = 8.0;
        const Estimate e = CountTrianglesRandomOrder(stream, params);
        return std::make_pair(e.value, e.space_words);
      });
      add(factor < 1 ? "mv20 (T/4 guess)" : "mv20 (4T guess)", mis);
    }
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "notes: triest-impr runs at half mv20's word budget, which at "
               "this scale approaches the whole stream (reservoir methods "
               "have no exploratory level structures); the heavy-edge story "
               "is the book-heavy block — the ablation and the capped "
               "Cormode-Jowhari estimator collapse there while mv20 holds "
               "(1+eps).\n";
  ctx.RecordTable("results", table);
  ctx.metrics().SetInt("rows", static_cast<std::int64_t>(table.num_rows()));
  return ctx.Finish();
}

}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
