// E5 — Theorem 4.2: the two-pass adjacency-list diamond algorithm for
// 4-cycle counting. Compares against naive edge sampling at matched space
// (the "count 4-cycles individually" strawman), sweeps the diamond-size
// skew (the variance the diamond grouping is designed to collapse), and
// checks space scaling vs T.

#include <iostream>

#include "baselines/naive_sampling.h"
#include "baselines/wedge_sampler.h"
#include "bench/bench_common.h"
#include "core/diamond_counter.h"
#include "gen/generators.h"

namespace cyclestream {
namespace {

struct Workload {
  std::string name;
  EdgeList graph;
  double t_exact = 0;
};

std::vector<Workload> BuildWorkloads(bool quick) {
  const VertexId n = quick ? 2000 : 6000;
  const std::size_t m = quick ? 6000 : 18000;
  std::vector<Workload> workloads;
  {
    // Uniform small diamonds: low skew.
    Rng gen(1);
    EdgeList g = PlantDiamonds(ErdosRenyiGnm(n, m, gen),
                               {DiamondSpec{8, n / 16}}, gen);
    workloads.push_back({"uniform-small", std::move(g)});
  }
  {
    // Skewed: a few giant diamonds carry most cycles.
    Rng gen(2);
    EdgeList g = PlantDiamonds(
        ErdosRenyiGnm(n, m, gen),
        {DiamondSpec{6, n / 32}, DiamondSpec{80, 3}}, gen);
    workloads.push_back({"skewed-giant", std::move(g)});
  }
  {
    // BA graph: organic diamonds around hubs.
    Rng gen(3);
    workloads.push_back({"ba-organic", BarabasiAlbert(n, 5, gen)});
  }
  for (Workload& w : workloads) {
    w.t_exact = static_cast<double>(CountFourCycles(Graph(w.graph)));
  }
  return workloads;
}

}  // namespace

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  bench::ExperimentContext ctx("E5", flags);
  const bool quick = flags.GetBool("quick", false);
  const int trials = static_cast<int>(flags.GetInt("trials", quick ? 5 : 9));
  const double epsilon = flags.GetDouble("epsilon", 0.25);

  bench::PrintHeader(
      "E5: adjacency-list 4-cycle counting via diamonds (Theorem 4.2)",
      "two passes, (1+eps) in O~(eps^-5 m/sqrt(T)) — vs Kallaugher et al.'s "
      "constant-factor in O~(m/T^{3/8}); diamond grouping collapses the "
      "variance of skewed instances",
      "planted diamond packs (uniform / giant-skewed) + BA");

  Table table({"workload", "T", "algorithm", "med.err", "p90.err",
               "med.space(w)"});
  for (const auto& w : BuildWorkloads(quick)) {
    const Graph g(w.graph);
    std::size_t our_space = 0;

    auto ours = bench::RunTrials(trials, w.t_exact, [&](int trial) {
      Rng rng(100 + trial);
      const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
      DiamondFourCycleCounter::Params params;
      params.base.epsilon = epsilon;
      params.base.c = 2.0;
      params.base.t_guess = std::max(1.0, w.t_exact);
      params.base.seed = 8000 + trial;
      params.num_vertices = g.num_vertices();
      // Cancel the theoretical eps^-2 (and log^3 n) factors that saturate
      // every rate at this scale; accuracy is reported as measured.
      params.vertex_rate_scale = epsilon * epsilon;
      params.edge_rate_scale = epsilon * epsilon;
      params.max_shifts = 3;
      const Estimate e = CountFourCyclesDiamond(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    our_space = static_cast<std::size_t>(ours.space_words.median);
    table.AddRow({w.name, Table::Int(static_cast<std::int64_t>(w.t_exact)),
                  "mv20-diamonds", Table::Pct(ours.rel_error.median),
                  Table::Pct(ours.rel_error.p90),
                  Table::Int(static_cast<std::int64_t>(ours.space_words.median))});

    // Naive sampling at the m/√T budget the theorem targets (the measured
    // space above carries the ε⁻¹·log-factor constants, which at this scale
    // exceed the stream; comparing at the asymptotic budget is the fair
    // shape test). (void)our_space keeps the measured figure in the table.
    (void)our_space;
    const double p_naive =
        std::min(1.0, 8.0 / std::sqrt(std::max(1.0, w.t_exact)));
    auto naive = bench::RunTrials(trials, w.t_exact, [&](int trial) {
      Rng rng(200 + trial);
      EdgeStream stream = w.graph.edges();
      rng.Shuffle(stream);
      const Estimate e = NaiveSampleFourCycles(
          stream, {p_naive, static_cast<std::uint64_t>(300 + trial)});
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow({w.name, Table::Int(static_cast<std::int64_t>(w.t_exact)),
                  "naive@m/sqrtT", Table::Pct(naive.rel_error.median),
                  Table::Pct(naive.rel_error.p90),
                  Table::Int(static_cast<std::int64_t>(naive.space_words.median))});

    // Per-cycle wedge sampling (no diamond grouping) at comparable rates:
    // the variance the grouping is designed to collapse shows up in p90.
    auto wedge = bench::RunTrials(trials, w.t_exact, [&](int trial) {
      Rng rng(600 + trial);
      const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
      WedgeSamplingFourCycleCounter::Params params;
      params.base.seed = 8500 + trial;
      params.num_vertices = g.num_vertices();
      params.vertex_rate =
          std::min(1.0, 16.0 / std::sqrt(std::max(1.0, w.t_exact)));
      params.edge_rate = 0.5;
      const Estimate e = CountFourCyclesWedgeSampling(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow({w.name, Table::Int(static_cast<std::int64_t>(w.t_exact)),
                  "per-cycle wedges", Table::Pct(wedge.rel_error.median),
                  Table::Pct(wedge.rel_error.p90),
                  Table::Int(static_cast<std::int64_t>(wedge.space_words.median))});

    // Misestimate row.
    auto mis = bench::RunTrials(trials, w.t_exact, [&](int trial) {
      Rng rng(400 + trial);
      const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
      DiamondFourCycleCounter::Params params;
      params.base.epsilon = epsilon;
      params.base.c = 2.0;
      params.base.t_guess = std::max(1.0, w.t_exact / 4.0);
      params.base.seed = 8100 + trial;
      params.num_vertices = g.num_vertices();
      params.vertex_rate_scale = epsilon * epsilon;
      params.edge_rate_scale = epsilon * epsilon;
      params.max_shifts = 3;
      const Estimate e = CountFourCyclesDiamond(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow({w.name, Table::Int(static_cast<std::int64_t>(w.t_exact)),
                  "mv20 (T/4 guess)", Table::Pct(mis.rel_error.median),
                  Table::Pct(mis.rel_error.p90),
                  Table::Int(static_cast<std::int64_t>(mis.space_words.median))});
  }
  table.Print(std::cout);

  // Space scaling vs T at fixed m.
  const VertexId n = quick ? 3000 : 8000;
  const std::size_t m = quick ? 9000 : 24000;
  Table scaling({"T", "med.space(w)", "med.err"});
  std::vector<double> ts, spaces;
  for (const std::uint32_t h : {8u, 24u, 72u, 216u}) {
    Rng gen(5);
    // Fixed total m: the diamond pack gets an m/4 edge budget, the ER base
    // the rest, so only T varies across rows.
    const std::size_t count = std::max<std::size_t>(2, m / (8 * h));
    EdgeList graph = PlantDiamonds(ErdosRenyiGnm(n, m - 2 * h * count, gen),
                                   {DiamondSpec{h, count}}, gen);
    const Graph gg(graph);
    const double t = static_cast<double>(CountFourCycles(gg));
    auto stats = bench::RunTrials(std::max(3, trials / 2), t, [&](int trial) {
      Rng rng(500 + trial);
      const AdjacencyStream stream = MakeAdjacencyStream(gg, rng);
      DiamondFourCycleCounter::Params params;
      params.base.epsilon = epsilon;
      params.base.c = 2.0;
      params.base.t_guess = t;
      params.base.seed = 8200 + trial;
      params.num_vertices = gg.num_vertices();
      params.vertex_rate_scale = epsilon * epsilon;
      params.edge_rate_scale = epsilon * epsilon;
      params.max_shifts = 2;
      const Estimate e = CountFourCyclesDiamond(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    ts.push_back(t);
    spaces.push_back(stats.space_words.median);
    scaling.AddRow({Table::Int(static_cast<std::int64_t>(t)),
                    Table::Int(static_cast<std::int64_t>(stats.space_words.median)),
                    Table::Pct(stats.rel_error.median)});
  }
  scaling.set_title("space vs T at fixed m=" + std::to_string(m));
  scaling.Print(std::cout);
  std::cout << "fitted log-log slope (space vs T): "
            << Table::Num(bench::LogLogSlope(ts, spaces), 3)
            << "   [paper: -0.5]\n";
  ctx.RecordTable("results", table);
  ctx.RecordTable("space_vs_t", scaling);
  ctx.metrics().Set("slope.space_vs_t", bench::LogLogSlope(ts, spaces));
  return ctx.Finish();
}

}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
