// Microbenchmarks (google-benchmark): the DODG/SIMD exact-counting backend
// (graph/dodg.h) against the naive oracles (graph/exact.h).
//
// Two fixture scales:
//   * Small — the exact fixtures bm_throughput uses for BM_ExactTriangles /
//     BM_ExactFourCycles (BA n=20000 deg=5 seed=1; ER n=4000 m=20000
//     seed=2), so the speedup over the historical oracle numbers in
//     BENCH_baseline.json reads off directly. In-suite BM_Naive* reference
//     runs make the comparison self-contained.
//   * Big — ~10 M-edge graphs (BA n=2M deg=5; ER n=4M m=10M), the scale
//     the backend exists for. The naive references run a single pinned
//     iteration each: on the hub-heavy BA fixture the wedge-map 4-cycle
//     oracle needs minutes and tens of GB where DODG needs seconds — CI's
//     bench-smoke filters them out (--benchmark_filter='-BM_Naive.*Big'),
//     the committed baseline records them once.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench/bench_common.h"
#include "gen/generators.h"
#include "graph/dodg.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "hash/rng.h"

namespace cyclestream {
namespace {

// Shared fixtures, built once on first use.
const EdgeList& SmallBa() {
  static const EdgeList* graph = [] {
    Rng rng(1);
    return new EdgeList(BarabasiAlbert(20000, 5, rng));
  }();
  return *graph;
}

const EdgeList& SmallEr() {
  static const EdgeList* graph = [] {
    Rng rng(2);
    return new EdgeList(ErdosRenyiGnm(4000, 20000, rng));
  }();
  return *graph;
}

const EdgeList& BigBa() {
  static const EdgeList* graph = [] {
    Rng rng(11);
    return new EdgeList(BarabasiAlbert(2000000, 5, rng));
  }();
  return *graph;
}

const EdgeList& BigEr() {
  static const EdgeList* graph = [] {
    Rng rng(12);
    return new EdgeList(ErdosRenyiGnm(4000000, 10000000, rng));
  }();
  return *graph;
}

void SetEdgeItems(benchmark::State& state, const EdgeList& graph) {
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.num_edges()));
}

// --- Small fixtures: naive reference vs DODG, same inputs. ---------------

void BM_NaiveTrianglesSmall(benchmark::State& state) {
  const Graph g(SmallBa());
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g));
  }
  SetEdgeItems(state, SmallBa());
}
BENCHMARK(BM_NaiveTrianglesSmall);

void BM_NaiveFourCyclesSmall(benchmark::State& state) {
  const Graph g(SmallEr());
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountFourCycles(g));
  }
  SetEdgeItems(state, SmallEr());
}
BENCHMARK(BM_NaiveFourCyclesSmall);

void BM_DodgTrianglesSmall(benchmark::State& state) {
  const DodgGraph g = DodgGraph::Build(SmallBa());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.CountTriangles());
  }
  SetEdgeItems(state, SmallBa());
}
BENCHMARK(BM_DodgTrianglesSmall);

void BM_DodgFourCyclesSmall(benchmark::State& state) {
  const DodgGraph g = DodgGraph::Build(SmallEr());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.CountFourCycles());
  }
  SetEdgeItems(state, SmallEr());
}
BENCHMARK(BM_DodgFourCyclesSmall);

// --- Big fixtures: the 10 M-edge scale the backend exists for. -----------

void BM_NaiveTrianglesBig(benchmark::State& state) {
  const Graph g(BigBa());
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g));
  }
  SetEdgeItems(state, BigBa());
}
BENCHMARK(BM_NaiveTrianglesBig)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_NaiveFourCyclesBig(benchmark::State& state) {
  const Graph g(BigBa());
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountFourCycles(g));
  }
  SetEdgeItems(state, BigBa());
}
BENCHMARK(BM_NaiveFourCyclesBig)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Pairs with BM_NaiveFourCyclesBig (same BA fixture).
void BM_DodgFourCyclesBig(benchmark::State& state) {
  const DodgGraph g = DodgGraph::Build(BigBa());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.CountFourCycles());
  }
  SetEdgeItems(state, BigBa());
}
BENCHMARK(BM_DodgFourCyclesBig)->Unit(benchmark::kMillisecond);

void BM_DodgBuild(benchmark::State& state) {
  const EdgeList& graph = BigBa();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DodgGraph::Build(graph));
  }
  SetEdgeItems(state, graph);
}
BENCHMARK(BM_DodgBuild)->Unit(benchmark::kMillisecond);

// Pairs with BM_NaiveTrianglesBig (same BA fixture).
void BM_DodgTriangles(benchmark::State& state) {
  const DodgGraph g = DodgGraph::Build(BigBa());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.CountTriangles());
  }
  SetEdgeItems(state, BigBa());
}
BENCHMARK(BM_DodgTriangles)->Unit(benchmark::kMillisecond);

// The flat (non-power-law) large case: ER at the same edge count.
void BM_DodgFourCycles(benchmark::State& state) {
  const DodgGraph g = DodgGraph::Build(BigEr());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.CountFourCycles());
  }
  SetEdgeItems(state, BigEr());
}
BENCHMARK(BM_DodgFourCycles)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cyclestream

int main(int argc, char** argv) {
  cyclestream::bench::RequireOptimizedBuild("bm_exact");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
