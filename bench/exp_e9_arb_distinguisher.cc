// E9 — Theorem 5.6: two-pass distinguisher for 0 vs T 4-cycles in
// Õ(m^{3/2}/T^{3/4}) space via the Kővári–Sós–Turán bound. Measures
// success rates on both sides across T, the space actually collected, and
// the degradation as the sampling constant c shrinks below the threshold.

#include <iostream>

#include "bench/bench_common.h"
#include "core/arb_distinguisher.h"
#include "gen/generators.h"

namespace cyclestream {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  bench::ExperimentContext ctx("E9", flags);
  const bool quick = flags.GetBool("quick", false);
  const int trials = static_cast<int>(flags.GetInt("trials", quick ? 30 : 80));

  bench::PrintHeader(
      "E9: two-pass 0-vs-T distinguisher (Theorem 5.6)",
      "success prob >= 2/3 in O~(m^{3/2}/T^{3/4}) space; one-sided "
      "(C4-free is never misreported)",
      "C4-free random graphs vs the same + planted 4-cycles");

  const VertexId n = quick ? 1500 : 4000;
  const std::size_t m = quick ? 3000 : 8000;
  Rng gen(1);
  const EdgeList free_graph = FourCycleFreeRandom(n, m, false, gen);

  Table table({"T", "c", "hit% (T cycles)", "false+% (0 cycles)",
               "med.space(w)", "stream(w)"});
  for (const std::size_t planted : {m / 60, m / 15, m / 4}) {
    // Keep total edge count ≈ m: the planted cycles bring 4·planted edges.
    const std::size_t base_m = m > 4 * planted ? m - 4 * planted : m / 2;
    Rng gen2(2);
    EdgeList base = FourCycleFreeRandom(n, base_m, false, gen2);
    const EdgeList cyclic = PlantFourCycles(std::move(base), planted, gen2);
    for (const double c : {0.25, 0.5, 1.0, 2.0}) {
      struct Outcome {
        bool hit = false;
        bool false_pos = false;
        std::size_t space = 0;
      };
      const auto outcomes = bench::CollectTrials(trials, [&](int trial) {
        ArbTwoPassDistinguisher::Params params;
        params.base.t_guess = static_cast<double>(planted);
        params.base.c = c;
        params.base.seed = 3000 + trial;
        params.num_vertices = n + 4 * static_cast<VertexId>(planted);
        Rng r1(100 + trial);
        EdgeStream s_cyclic = cyclic.edges();
        r1.Shuffle(s_cyclic);
        std::size_t space = 0;
        const bool hit = DistinguishFourCycles(s_cyclic, params, &space);
        Rng r2(200 + trial);
        EdgeStream s_free = free_graph.edges();
        r2.Shuffle(s_free);
        const bool fp = DistinguishFourCycles(s_free, params);
        return Outcome{hit, fp, space};
      });
      int hits = 0, false_pos = 0;
      std::vector<double> spaces;
      for (const Outcome& o : outcomes) {
        hits += o.hit ? 1 : 0;
        false_pos += o.false_pos ? 1 : 0;
        spaces.push_back(static_cast<double>(o.space));
      }
      table.AddRow({Table::Int(static_cast<std::int64_t>(planted)),
                    Table::Num(c, 1), Table::Pct(double(hits) / trials),
                    Table::Pct(double(false_pos) / trials),
                    Table::Int(static_cast<std::int64_t>(
                        Summarize(std::move(spaces)).median)),
                    Table::Int(2 * static_cast<std::int64_t>(cyclic.num_edges()))});
    }
  }
  table.Print(std::cout);
  std::cout << "(expected shape: hit% rises past 2/3 once c is a sufficient "
               "constant; false+% is identically 0 — the test is one-sided; "
               "space falls as T grows)\n";
  ctx.RecordTable("results", table);
  return ctx.Finish();
}

}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
