// Microbenchmarks (google-benchmark): raw throughput of the substrates and
// of every streaming counter, in edges (or adjacency items) per second.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "baselines/triest.h"
#include "bench/bench_common.h"
#include "engine/broker.h"
#include "engine/query.h"
#include "graph/binary_io.h"
#include "graph/io.h"
#include "core/adj_f2_counter.h"
#include "core/amplify.h"
#include "core/arb_f2_counter.h"
#include "core/arb_three_pass.h"
#include "core/diamond_counter.h"
#include "core/random_order_triangles.h"
#include "gen/generators.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "sketch/ams_f2.h"
#include "sketch/count_sketch.h"
#include "stream/order.h"
#include "util/parallel.h"

namespace cyclestream {
namespace {

// Shared fixtures, built once.
const EdgeList& BaGraph() {
  static const EdgeList* graph = [] {
    Rng rng(1);
    return new EdgeList(BarabasiAlbert(20000, 5, rng));
  }();
  return *graph;
}

const Graph& BaCsr() {
  static const Graph* g = new Graph(BaGraph());
  return *g;
}

void BM_GenerateErdosRenyiGnm(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(ErdosRenyiGnm(10000, m, rng));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_GenerateErdosRenyiGnm)->Arg(10000)->Arg(100000);

void BM_GenerateBarabasiAlbert(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(BarabasiAlbert(10000, 5, rng));
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_GenerateBarabasiAlbert);

void BM_BuildCsr(benchmark::State& state) {
  const EdgeList& graph = BaGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Graph(graph));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.num_edges()));
}
BENCHMARK(BM_BuildCsr);

void BM_ExactTriangles(benchmark::State& state) {
  const Graph& g = BaCsr();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_ExactTriangles);

void BM_ExactFourCycles(benchmark::State& state) {
  Rng rng(2);
  const Graph g(ErdosRenyiGnm(4000, 20000, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountFourCycles(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_ExactFourCycles);

void BM_RandomOrderShuffle(benchmark::State& state) {
  const EdgeList& graph = BaGraph();
  std::uint64_t seed = 7;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(MakeRandomOrderStream(graph, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.num_edges()));
}
BENCHMARK(BM_RandomOrderShuffle);

void BM_TriangleCounterRandomOrder(benchmark::State& state) {
  const EdgeList& graph = BaGraph();
  Rng rng(3);
  const EdgeStream stream = MakeRandomOrderStream(graph, rng);
  const double t = 60000;  // Guess scale only; throughput test.
  std::uint64_t seed = 0;
  for (auto _ : state) {
    RandomOrderTriangleCounter::Params params;
    params.base.epsilon = 0.2;
    params.base.t_guess = t;
    params.base.seed = seed++;
    params.num_vertices = graph.num_vertices();
    benchmark::DoNotOptimize(CountTrianglesRandomOrder(stream, params));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_TriangleCounterRandomOrder);

void BM_Triest(benchmark::State& state) {
  const EdgeList& graph = BaGraph();
  Rng rng(4);
  const EdgeStream stream = MakeRandomOrderStream(graph, rng);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Triest::Params params;
    params.reservoir_capacity = static_cast<std::size_t>(state.range(0));
    params.seed = seed++;
    Triest algo(params);
    RunEdgeStream(algo, stream);
    benchmark::DoNotOptimize(algo.EstimateTriangles());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_Triest)->Arg(1000)->Arg(10000);

void BM_DiamondCounter(benchmark::State& state) {
  Rng gen(5);
  EdgeList base(1);
  base.Finalize();
  const Graph g(PlantDiamonds(ErdosRenyiGnm(3000, 9000, gen),
                              {DiamondSpec{8, 50}}, gen));
  Rng rng(6);
  const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    DiamondFourCycleCounter::Params params;
    params.base.epsilon = 0.25;
    params.base.t_guess = 1400;
    params.base.seed = seed++;
    params.num_vertices = g.num_vertices();
    params.max_shifts = 2;
    benchmark::DoNotOptimize(CountFourCyclesDiamond(stream, params));
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_DiamondCounter);

void BM_ArbThreePass(benchmark::State& state) {
  Rng gen(7);
  EdgeList graph = PlantFourCycles(ErdosRenyiGnm(3000, 9000, gen), 500, gen);
  Rng rng(8);
  EdgeStream stream = graph.edges();
  rng.Shuffle(stream);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ArbThreePassFourCycleCounter::Params params;
    params.base.epsilon = 0.3;
    params.base.t_guess = 500;
    params.base.seed = seed++;
    params.num_vertices = graph.num_vertices();
    benchmark::DoNotOptimize(CountFourCyclesArbThreePass(stream, params));
  }
  state.SetItemsProcessed(state.iterations() * 3 *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ArbThreePass);

void BM_ArbF2PerEdge(benchmark::State& state) {
  Rng gen(9);
  const Graph g(ErdosRenyiGnp(200, 0.3, gen));
  EdgeStream stream = g.edges();
  ArbF2FourCycleCounter::Params params;
  params.base.epsilon = 0.15;
  params.num_vertices = g.num_vertices();
  params.copies_per_group = static_cast<int>(state.range(0));
  ArbF2FourCycleCounter counter(params);
  std::size_t i = 0;
  for (auto _ : state) {
    counter.Insert(stream[i % stream.size()]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArbF2PerEdge)->Arg(64)->Arg(512);

void BM_AmsF2Update(benchmark::State& state) {
  AmsF2 sketch(9, static_cast<std::size_t>(state.range(0)), 1);
  std::uint64_t key = 0;
  for (auto _ : state) {
    sketch.Update(key++, 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AmsF2Update)->Arg(16)->Arg(128);

void BM_CountSketchUpdate(benchmark::State& state) {
  CountSketch sketch(5, 512, 2);
  std::uint64_t key = 0;
  for (auto _ : state) {
    sketch.Update(key++, 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSketchUpdate);

void BM_AdjF2List(benchmark::State& state) {
  Rng gen(10);
  const Graph g(ErdosRenyiGnp(200, 0.2, gen));
  const AdjacencyStream stream = MakeAdjacencyStreamById(g);
  AdjF2FourCycleCounter::Params params;
  params.base.epsilon = 0.2;
  params.base.t_guess = 1e5;
  params.num_vertices = g.num_vertices();
  params.copies_per_group = 64;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    params.base.seed = seed++;
    AdjF2FourCycleCounter counter(params);
    RunAdjacencyStream(counter, stream);
    benchmark::DoNotOptimize(counter.Result());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_AdjF2List);

// Engine fan-out: one physical pass over the shared stream feeding Arg
// concurrent Triest estimators. items/s counts *delivered* edges
// (stream × queries), so flat items/s across Args means the broker adds
// no per-query overhead beyond the estimators themselves.
void BM_BrokerFanout(benchmark::State& state) {
  const EdgeList& graph = BaGraph();
  Rng rng(12);
  const EdgeStream stream = MakeRandomOrderStream(graph, rng);
  const int queries = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    engine::StreamBroker broker;
    for (int q = 0; q < queries; ++q) {
      engine::QuerySpec spec;
      spec.name = "triest-" + std::to_string(q);
      spec.kind = engine::QueryKind::kTriest;
      spec.base.seed = seed++;
      spec.reservoir_capacity = 1000;
      broker.AddQuery(std::move(spec));
    }
    benchmark::DoNotOptimize(broker.RunEdgeQueries(stream));
  }
  state.SetItemsProcessed(state.iterations() * queries *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_BrokerFanout)->Arg(1)->Arg(8)->Arg(16);

// Ingest formats: the same BA edge stream parsed from SNAP-style text vs
// opened from the binary format (mmap + full header/CRC/edge validation,
// zero-copy after that). items/s is edges ingested per second.
struct IngestFixture {
  std::string text_path;
  std::string bin_path;
  std::size_t edges = 0;

  IngestFixture() {
    const auto dir = std::filesystem::temp_directory_path();
    text_path = (dir / "cyclestream_bm_ingest.txt").string();
    bin_path = (dir / "cyclestream_bm_ingest.bin").string();
    const EdgeList& graph = BaGraph();
    edges = graph.num_edges();
    if (!SaveEdgeListText(graph, text_path) ||
        !WriteBinaryEdgeStream(graph, bin_path)) {
      std::fprintf(stderr, "BM_Ingest fixture: cannot write temp files\n");
      std::abort();
    }
  }
};

const IngestFixture& Ingest() {
  static const IngestFixture* fixture = new IngestFixture();
  return *fixture;
}

void BM_IngestText(benchmark::State& state) {
  const IngestFixture& fx = Ingest();
  for (auto _ : state) {
    auto loaded = LoadEdgeListText(fx.text_path);
    if (!loaded) std::abort();
    benchmark::DoNotOptimize(loaded->num_edges());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.edges));
}
BENCHMARK(BM_IngestText);

void BM_IngestBinary(benchmark::State& state) {
  const IngestFixture& fx = Ingest();
  for (auto _ : state) {
    BinaryEdgeReader reader;
    std::string error;
    if (!reader.Open(fx.bin_path, &error)) std::abort();
    benchmark::DoNotOptimize(reader.edges());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.edges));
}
BENCHMARK(BM_IngestBinary);

// Amplified run on the thread pool: Arg = thread count. The estimates are
// bit-identical across Args (the parallel layer's determinism contract);
// only the wall clock should change. delta = 1e-4 gives 19 copies.
void BM_AmplifyMedianThreads(benchmark::State& state) {
  SetDefaultThreads(static_cast<int>(state.range(0)));
  Rng gen(11);
  const EdgeList graph =
      PlantTriangles(ErdosRenyiGnm(4000, 16000, gen), 800, gen);
  const auto run = [&graph](std::uint64_t seed) {
    Rng rng(seed);
    const EdgeStream stream = MakeRandomOrderStream(graph, rng);
    RandomOrderTriangleCounter::Params params;
    params.base.epsilon = 0.2;
    params.base.t_guess = 800;
    params.base.seed = seed;
    params.num_vertices = graph.num_vertices();
    return CountTrianglesRandomOrder(stream, params);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(AmplifyMedian(1e-4, 42, run));
  }
  state.SetItemsProcessed(state.iterations() * AmplifyCopies(1e-4) *
                          static_cast<std::int64_t>(graph.num_edges()));
  SetDefaultThreads(0);
}
BENCHMARK(BM_AmplifyMedianThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace cyclestream

int main(int argc, char** argv) {
  cyclestream::bench::RequireOptimizedBuild("bm_throughput");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
