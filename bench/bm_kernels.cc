// Microbenchmarks (google-benchmark) for the hot-path kernels behind the
// streaming counters: batched k-wise hashing (KWiseHashBank) against the
// scalar per-copy loop it replaced, the flat open-addressing wedge map
// against std::unordered_map, the sorted-adjacency intersection kernels,
// and the parallel wedge-vector computation. These are the fine-grained
// companions to bm_throughput's end-to-end suites; tools/bench_compare.py
// diffs their JSON output against the committed BENCH_baseline.json.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "gen/generators.h"
#include "graph/exact.h"
#include "graph/flat_map.h"
#include "graph/graph.h"
#include "graph/intersect.h"
#include "graph/types.h"
#include "hash/kwise.h"
#include "hash/kwise_bank.h"
#include "hash/rng.h"
#include "util/parallel.h"

namespace cyclestream {
namespace {

std::vector<std::uint64_t> BankSeeds(std::size_t n) {
  std::vector<std::uint64_t> seeds(n);
  std::uint64_t s = 0x5EEDULL;
  for (std::size_t i = 0; i < n; ++i) seeds[i] = SplitMix64(s);
  return seeds;
}

// --- Batched vs scalar k-wise hashing ------------------------------------

void BM_KWiseScalarEvalLoop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto seeds = BankSeeds(n);
  std::vector<KWiseHash> hashes;
  for (std::size_t i = 0; i < n; ++i) hashes.emplace_back(4, seeds[i]);
  std::vector<std::uint64_t> out(n);
  std::uint64_t key = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) out[i] = hashes[i](key);
    benchmark::DoNotOptimize(out.data());
    ++key;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KWiseScalarEvalLoop)->Arg(16)->Arg(128);

void BM_KWiseBankEvalAll(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const KWiseHashBank bank(4, BankSeeds(n));
  std::vector<std::uint64_t> out(n);
  std::uint64_t key = 0;
  for (auto _ : state) {
    bank.EvalAll(key++, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KWiseBankEvalAll)->Arg(16)->Arg(128);

void BM_KWiseBankSignAll(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const KWiseHashBank bank(4, BankSeeds(n));
  std::vector<signed char> out(n);
  std::uint64_t key = 0;
  for (auto _ : state) {
    bank.SignAll(key++, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KWiseBankSignAll)->Arg(16)->Arg(128);

void BM_KWiseBankAccumulateSigned(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const KWiseHashBank bank(4, BankSeeds(n));
  std::vector<double> counters(n, 0.0);
  std::uint64_t key = 0;
  for (auto _ : state) {
    bank.AccumulateSigned(key++, 1.0, counters.data());
    benchmark::DoNotOptimize(counters.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KWiseBankAccumulateSigned)->Arg(16)->Arg(128);

// --- Flat wedge map vs std::unordered_map --------------------------------

// Wedge-like key mix: pair keys from a bounded vertex range with repeats.
std::vector<std::uint64_t> WedgeKeys(std::size_t count) {
  std::vector<std::uint64_t> keys(count);
  std::uint64_t s = 0xC0FFEEULL;
  for (std::size_t i = 0; i < count; ++i) {
    const auto a = static_cast<VertexId>(SplitMix64(s) % 2000);
    auto b = static_cast<VertexId>(SplitMix64(s) % 2000);
    if (b == a) b = (b + 1) % 2000;
    keys[i] = PairKey(a, b);
  }
  return keys;
}

void BM_UnorderedMapIncrement(benchmark::State& state) {
  const auto keys = WedgeKeys(1 << 16);
  for (auto _ : state) {
    std::unordered_map<std::uint64_t, std::uint32_t, Mix64Hash> map;
    for (const std::uint64_t k : keys) ++map[k];
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_UnorderedMapIncrement);

void BM_FlatMapIncrement(benchmark::State& state) {
  const auto keys = WedgeKeys(1 << 16);
  for (auto _ : state) {
    FlatMap64<std::uint32_t> map;
    for (const std::uint64_t k : keys) ++map[k];
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_FlatMapIncrement);

void BM_UnorderedMapLookup(benchmark::State& state) {
  const auto keys = WedgeKeys(1 << 16);
  std::unordered_map<std::uint64_t, std::uint32_t, Mix64Hash> map;
  for (const std::uint64_t k : keys) ++map[k];
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (const std::uint64_t k : keys) {
      const auto it = map.find(k);
      total += it == map.end() ? 0 : it->second;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_UnorderedMapLookup);

void BM_FlatMapLookup(benchmark::State& state) {
  const auto keys = WedgeKeys(1 << 16);
  FlatMap64<std::uint32_t> map;
  for (const std::uint64_t k : keys) ++map[k];
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (const std::uint64_t k : keys) {
      const std::uint32_t* v = map.find(k);
      total += v == nullptr ? 0 : *v;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_FlatMapLookup);

// --- Sorted intersection kernels -----------------------------------------

void BM_IntersectBalanced(benchmark::State& state) {
  // Two same-length sorted lists with ~50% overlap: the two-pointer path.
  std::vector<VertexId> a, b;
  for (VertexId i = 0; i < 4096; ++i) {
    a.push_back(2 * i);
    b.push_back(3 * i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedIntersectionCount(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_IntersectBalanced);

void BM_IntersectSkewed(benchmark::State& state) {
  // |b| = 256·|a|: the galloping path (ratio ≥ kGallopRatio).
  std::vector<VertexId> a, b;
  for (VertexId i = 0; i < 64; ++i) a.push_back(1000 * i);
  for (VertexId i = 0; i < 64 * 256; ++i) b.push_back(7 * i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedIntersectionCount(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size()));
}
BENCHMARK(BM_IntersectSkewed);

// --- Wedge-vector pipeline ------------------------------------------------

void BM_ComputeWedgeVector(benchmark::State& state) {
  SetDefaultThreads(static_cast<int>(state.range(0)));
  Rng rng(12);
  const Graph g(ErdosRenyiGnm(4000, 20000, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeWedgeVector(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(CountWedges(g)));
  SetDefaultThreads(0);
}
BENCHMARK(BM_ComputeWedgeVector)->Arg(1)->Arg(8)->UseRealTime();

void BM_PerEdgeFourCycleCounts(benchmark::State& state) {
  Rng rng(13);
  const Graph g(ErdosRenyiGnm(1500, 9000, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PerEdgeFourCycleCounts(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_PerEdgeFourCycleCounts);

}  // namespace
}  // namespace cyclestream

int main(int argc, char** argv) {
  cyclestream::bench::RequireOptimizedBuild("bm_kernels");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
