// Microbenchmarks (google-benchmark) for the hot-path kernels behind the
// streaming counters: batched k-wise hashing (KWiseHashBank) against the
// scalar per-copy loop it replaced, the flat open-addressing wedge map
// against std::unordered_map, the sorted-adjacency intersection kernels,
// and the parallel wedge-vector computation. These are the fine-grained
// companions to bm_throughput's end-to-end suites; tools/bench_compare.py
// diffs their JSON output against the committed BENCH_baseline.json.

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/turnstile_f2.h"
#include "engine/broker.h"
#include "engine/coordinator.h"
#include "engine/query.h"
#include "engine/shard.h"
#include "gen/generators.h"
#include "graph/exact.h"
#include "graph/flat_map.h"
#include "graph/graph.h"
#include "graph/intersect.h"
#include "graph/types.h"
#include "hash/kwise.h"
#include "hash/kwise_bank.h"
#include "hash/kwise_kernels.h"
#include "hash/rng.h"
#include "sketch/ams_f2.h"
#include "sketch/count_sketch.h"
#include "sketch/sketch_backend.h"
#include "stream/dynamic/turnstile.h"
#include "stream/order.h"
#include "stream/window/window.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace cyclestream {
namespace {

std::vector<std::uint64_t> BankSeeds(std::size_t n) {
  std::vector<std::uint64_t> seeds(n);
  std::uint64_t s = 0x5EEDULL;
  for (std::size_t i = 0; i < n; ++i) seeds[i] = SplitMix64(s);
  return seeds;
}

// --- Batched vs scalar k-wise hashing ------------------------------------

void BM_KWiseScalarEvalLoop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto seeds = BankSeeds(n);
  std::vector<KWiseHash> hashes;
  for (std::size_t i = 0; i < n; ++i) hashes.emplace_back(4, seeds[i]);
  std::vector<std::uint64_t> out(n);
  std::uint64_t key = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) out[i] = hashes[i](key);
    benchmark::DoNotOptimize(out.data());
    ++key;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KWiseScalarEvalLoop)->Arg(16)->Arg(128);

void BM_KWiseBankEvalAll(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const KWiseHashBank bank(4, BankSeeds(n));
  std::vector<std::uint64_t> out(n);
  std::uint64_t key = 0;
  for (auto _ : state) {
    bank.EvalAll(key++, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KWiseBankEvalAll)->Arg(16)->Arg(128);

void BM_KWiseBankSignAll(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const KWiseHashBank bank(4, BankSeeds(n));
  std::vector<signed char> out(n);
  std::uint64_t key = 0;
  for (auto _ : state) {
    bank.SignAll(key++, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KWiseBankSignAll)->Arg(16)->Arg(128);

void BM_KWiseBankAccumulateSigned(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const KWiseHashBank bank(4, BankSeeds(n));
  std::vector<double> counters(n, 0.0);
  std::uint64_t key = 0;
  for (auto _ : state) {
    bank.AccumulateSigned(key++, 1.0, counters.data());
    benchmark::DoNotOptimize(counters.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KWiseBankAccumulateSigned)->Arg(16)->Arg(128);

// --- Block-update sketch kernels ------------------------------------------
//
// Arg(0) on the *Block benchmarks selects the kernel tier: 0 forces the
// scalar twins, 1 is auto-dispatch (best SIMD tier the host supports). The
// per-edge benchmarks alongside are the baselines the ISSUE's speedup
// criteria are measured against.

SketchSimdMode TierFromArg(std::int64_t arg) {
  return arg == 0 ? SketchSimdMode::kScalar : SketchSimdMode::kAuto;
}

std::vector<std::uint64_t> BlockKeys(std::size_t count) {
  std::vector<std::uint64_t> keys(count);
  std::uint64_t s = 0xB10CULL;
  for (auto& k : keys) k = SplitMix64(s);
  return keys;
}

void BM_HashBlock(benchmark::State& state) {
  // 96 degree-3 polynomials over a 4096-key block (the broker block size):
  // the kernel behind AmsF2::UpdateBlock and CountSketch::UpdateBlock.
  SetSketchSimdMode(TierFromArg(state.range(0)));
  const std::size_t n = 96;
  const KWiseHashBank bank(4, BankSeeds(n));
  const auto keys = BlockKeys(4096);
  std::vector<std::uint64_t> out(n * keys.size());
  for (auto _ : state) {
    bank.EvalBlock(keys, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * keys.size()));
  SetSketchSimdMode(SketchSimdMode::kAuto);
}
BENCHMARK(BM_HashBlock)->Arg(0)->Arg(1);

void BM_AmsF2UpdatePerEdge(benchmark::State& state) {
  // Per-edge baseline: 9 groups x 128 copies = 1152 counters per update.
  AmsF2 sketch(9, 128, 1);
  const auto keys = BlockKeys(4096);
  for (auto _ : state) {
    for (const std::uint64_t k : keys) sketch.Update(k, 1.0);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_AmsF2UpdatePerEdge);

void BM_AmsF2UpdateBlock(benchmark::State& state) {
  SetSketchSimdMode(TierFromArg(state.range(0)));
  AmsF2 sketch(9, 128, 1);
  const auto keys = BlockKeys(4096);
  for (auto _ : state) {
    sketch.UpdateBlock(keys, 1.0);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
  SetSketchSimdMode(SketchSimdMode::kAuto);
}
BENCHMARK(BM_AmsF2UpdateBlock)->Arg(0)->Arg(1);

void BM_CountSketchUpdatePerEdge(benchmark::State& state) {
  // Per-edge baseline: depth 5, width 512.
  CountSketch sketch(5, 512, 7);
  const auto keys = BlockKeys(4096);
  for (auto _ : state) {
    for (const std::uint64_t k : keys) sketch.Update(k, 1.0);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_CountSketchUpdatePerEdge);

void BM_CountSketchUpdateBlock(benchmark::State& state) {
  SetSketchSimdMode(TierFromArg(state.range(0)));
  CountSketch sketch(5, 512, 7);
  const auto keys = BlockKeys(4096);
  for (auto _ : state) {
    sketch.UpdateBlock(keys, 1.0);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
  SetSketchSimdMode(SketchSimdMode::kAuto);
}
BENCHMARK(BM_CountSketchUpdateBlock)->Arg(0)->Arg(1);

void BM_BrokerIntraQueryScaling(benchmark::State& state) {
  // One arb-f2 query through the broker with the block backend and
  // Arg(0) intra-query shards. Thread budget = hardware concurrency: on a
  // multi-core host this measures real wall-clock scaling; on a single-core
  // host ParallelFor runs the shards inline, so the numbers degrade to the
  // sharding bookkeeping overhead rather than oversubscription noise.
  SetDefaultThreads(0);
  Rng gen(41);
  const EdgeList graph = ErdosRenyiGnm(3000, 60000, gen);
  Rng order(42);
  const EdgeStream stream = MakeRandomOrderStream(graph, order);
  engine::QuerySpec spec;
  spec.name = "arb-f2";
  spec.kind = engine::QueryKind::kArbF2;
  spec.base.epsilon = 0.3;
  spec.base.t_guess = 1000.0;
  spec.base.seed = 99;
  spec.num_vertices = graph.num_vertices();
  spec.sketch_backend = SketchBackend::kBlock;
  spec.intra_shards = static_cast<int>(state.range(0));
  for (auto _ : state) {
    engine::StreamBroker broker;  // One-shot: rebuilt per iteration.
    broker.AddQuery(spec);
    benchmark::DoNotOptimize(broker.RunEdgeQueries(stream));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
  SetDefaultThreads(0);
}
BENCHMARK(BM_BrokerIntraQueryScaling)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// --- Turnstile & windowing (src/stream/dynamic, src/stream/window) --------

// A mixed insert/delete stream: every third edge of a G(n,m) graph is
// deleted again, so the signed update path (TurnstileSign multiplied into
// the block kernels) is exercised on both signs.
TurnstileStream BenchTurnstileStream(VertexId* num_vertices) {
  Rng gen(47);
  const EdgeList graph = ErdosRenyiGnm(3000, 60000, gen);
  *num_vertices = graph.num_vertices();
  TurnstileStream stream = TurnstileFromEdges(graph.edges());
  for (std::size_t i = 0; i < graph.edges().size(); i += 3) {
    stream.emplace_back(graph.edges()[i], TurnstileOp::kDelete);
  }
  return stream;
}

// Signed update throughput of the turnstile triangle sketch. Arg(0) = 0
// runs the scalar per-update path, 1 the batched block path (edge span +
// ±1 sign span through the sharded kernels) — the turnstile twin of
// BM_AmsF2UpdatePerEdge/UpdateBlock.
void BM_TurnstileUpdate(benchmark::State& state) {
  TurnstileF2TriangleCounter::Params p;
  p.base.epsilon = 0.3;
  p.base.t_guess = 1000.0;
  p.base.seed = 77;
  TurnstileStream stream = BenchTurnstileStream(&p.num_vertices);
  p.sketch_backend =
      state.range(0) == 0 ? SketchBackend::kScalar : SketchBackend::kBlock;
  for (auto _ : state) {
    TurnstileF2TriangleCounter alg(p);
    alg.StartPass(0, stream.size());
    alg.ProcessUpdateBlock(0, std::span<const TurnstileUpdate>(stream), 0);
    alg.EndPass(0);
    benchmark::DoNotOptimize(alg.Result());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_TurnstileUpdate)->Arg(0)->Arg(1);

// Cost of a sliding-window Result(): a fresh factory instance plus
// MergeFrom folds of the live buckets (oldest -> newest). Arg = bucket
// count; the stream fill happens outside the timed loop.
void BM_WindowBucketMerge(benchmark::State& state) {
  const auto buckets = static_cast<std::uint64_t>(state.range(0));
  TurnstileF2TriangleCounter::Params p;
  p.base.epsilon = 0.3;
  p.base.t_guess = 1000.0;
  p.base.seed = 78;
  TurnstileStream stream = BenchTurnstileStream(&p.num_vertices);
  const std::uint64_t window = stream.size() - stream.size() % buckets;
  const TurnstileAlgorithmFactory factory = [&p] {
    return std::make_unique<TurnstileF2TriangleCounter>(p);
  };
  SlidingWindowAlgorithm alg(factory, factory()->CheckpointId(), window,
                             buckets);
  RunTurnstileStream(alg, stream);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.Result());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(buckets));
}
BENCHMARK(BM_WindowBucketMerge)->Arg(2)->Arg(8)->Arg(32);

// --- Sharded coordinator (src/engine/shard, coordinator) ------------------

std::vector<engine::QuerySpec> ShardBenchSpecs(std::size_t count,
                                               std::uint32_t num_vertices) {
  std::vector<engine::QuerySpec> specs(count);
  for (std::size_t i = 0; i < count; ++i) {
    engine::QuerySpec& spec = specs[i];
    spec.name = "arb-f2-" + std::to_string(i);
    spec.kind = engine::QueryKind::kArbF2;
    spec.base.epsilon = 0.4;
    spec.base.t_guess = 1000.0;
    spec.base.seed = 500 + i;
    spec.num_vertices = num_vertices;
    spec.sketch_backend = SketchBackend::kBlock;
  }
  return specs;
}

// Serialize/merge cost alone: W pre-built shard states folded into one
// query via RestoreState + MergeFrom, exactly the coordinator's fold loop.
// Arg = number of shard states.
void BM_ShardMerge(benchmark::State& state) {
  const std::size_t workers = static_cast<std::size_t>(state.range(0));
  Rng gen(43);
  const EdgeList graph = ErdosRenyiGnm(3000, 60000, gen);
  Rng order(44);
  const EdgeStream stream = MakeRandomOrderStream(graph, order);
  const std::vector<engine::QuerySpec> specs =
      ShardBenchSpecs(1, graph.num_vertices());
  const std::vector<engine::ShardRange> ranges =
      engine::PartitionStream(stream.size(), workers);

  // Pre-serialize one state blob per shard, outside the timed loop.
  std::vector<std::string> blobs(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    engine::EdgeQuery query = engine::MakeEdgeQuery(specs[0]);
    query.algorithm->StartPass(0, stream.size());
    for (std::uint64_t i = ranges[w].begin; i < ranges[w].end; ++i) {
      const auto pos = static_cast<std::size_t>(i);
      query.algorithm->ProcessEdge(0, stream[pos], pos);
    }
    StateWriter writer;
    query.algorithm->SaveState(writer);
    blobs[w] = writer.Take();
  }

  for (auto _ : state) {
    engine::EdgeQuery merged = engine::MakeEdgeQuery(specs[0]);
    {
      StateReader reader(blobs[0]);
      CHECK(merged.algorithm->RestoreState(reader));
    }
    for (std::size_t w = 1; w < workers; ++w) {
      engine::EdgeQuery scratch = engine::MakeEdgeQuery(specs[0]);
      StateReader reader(blobs[w]);
      CHECK(scratch.algorithm->RestoreState(reader));
      merged.algorithm->MergeFrom(*scratch.algorithm);
    }
    benchmark::DoNotOptimize(merged.result());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(workers));
}
BENCHMARK(BM_ShardMerge)->Arg(2)->Arg(4)->Arg(8);

// End-to-end sharded ingest: W in-process workers over the same stream and
// query set, coordinator-merged. In-process launch runs the workers
// serially (it is the deterministic oracle mode — subprocess launch is the
// parallel one), so Arg>1 measures the coordinator's overhead per added
// shard (partition + per-shard state serialize/restore/merge) against the
// Arg(1) baseline, not wall-clock speedup.
void BM_ShardedIngestScaling(benchmark::State& state) {
  SetDefaultThreads(0);
  const int workers = static_cast<int>(state.range(0));
  Rng gen(45);
  const EdgeList graph = ErdosRenyiGnm(3000, 60000, gen);
  Rng order(46);
  const EdgeStream stream = MakeRandomOrderStream(graph, order);
  const std::vector<engine::QuerySpec> specs =
      ShardBenchSpecs(4, graph.num_vertices());

  const std::string dir = "/tmp/cyclestream_bm_shard";
  std::filesystem::create_directories(dir);
  engine::ShardPlanOptions options;
  options.num_workers = workers;
  options.shard_dir = dir;
  options.launch = engine::ShardLaunch::kInProcess;

  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine::RunShardedBatch(specs, std::span<const Edge>(stream), options));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()) *
                          static_cast<std::int64_t>(specs.size()));
  SetDefaultThreads(0);
}
BENCHMARK(BM_ShardedIngestScaling)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// --- Flat wedge map vs std::unordered_map --------------------------------

// Wedge-like key mix: pair keys from a bounded vertex range with repeats.
std::vector<std::uint64_t> WedgeKeys(std::size_t count) {
  std::vector<std::uint64_t> keys(count);
  std::uint64_t s = 0xC0FFEEULL;
  for (std::size_t i = 0; i < count; ++i) {
    const auto a = static_cast<VertexId>(SplitMix64(s) % 2000);
    auto b = static_cast<VertexId>(SplitMix64(s) % 2000);
    if (b == a) b = (b + 1) % 2000;
    keys[i] = PairKey(a, b);
  }
  return keys;
}

void BM_UnorderedMapIncrement(benchmark::State& state) {
  const auto keys = WedgeKeys(1 << 16);
  for (auto _ : state) {
    std::unordered_map<std::uint64_t, std::uint32_t, Mix64Hash> map;
    for (const std::uint64_t k : keys) ++map[k];
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_UnorderedMapIncrement);

void BM_FlatMapIncrement(benchmark::State& state) {
  const auto keys = WedgeKeys(1 << 16);
  for (auto _ : state) {
    FlatMap64<std::uint32_t> map;
    for (const std::uint64_t k : keys) ++map[k];
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_FlatMapIncrement);

void BM_UnorderedMapLookup(benchmark::State& state) {
  const auto keys = WedgeKeys(1 << 16);
  std::unordered_map<std::uint64_t, std::uint32_t, Mix64Hash> map;
  for (const std::uint64_t k : keys) ++map[k];
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (const std::uint64_t k : keys) {
      const auto it = map.find(k);
      total += it == map.end() ? 0 : it->second;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_UnorderedMapLookup);

void BM_FlatMapLookup(benchmark::State& state) {
  const auto keys = WedgeKeys(1 << 16);
  FlatMap64<std::uint32_t> map;
  for (const std::uint64_t k : keys) ++map[k];
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (const std::uint64_t k : keys) {
      const std::uint32_t* v = map.find(k);
      total += v == nullptr ? 0 : *v;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_FlatMapLookup);

// --- Sorted intersection kernels -----------------------------------------

void BM_IntersectBalanced(benchmark::State& state) {
  // Two same-length sorted lists with ~50% overlap: the two-pointer path.
  std::vector<VertexId> a, b;
  for (VertexId i = 0; i < 4096; ++i) {
    a.push_back(2 * i);
    b.push_back(3 * i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedIntersectionCount(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_IntersectBalanced);

void BM_IntersectSkewed(benchmark::State& state) {
  // |b| = 256·|a|: the galloping path (ratio ≥ kGallopRatio).
  std::vector<VertexId> a, b;
  for (VertexId i = 0; i < 64; ++i) a.push_back(1000 * i);
  for (VertexId i = 0; i < 64 * 256; ++i) b.push_back(7 * i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedIntersectionCount(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size()));
}
BENCHMARK(BM_IntersectSkewed);

// --- Wedge-vector pipeline ------------------------------------------------

void BM_ComputeWedgeVector(benchmark::State& state) {
  SetDefaultThreads(static_cast<int>(state.range(0)));
  Rng rng(12);
  const Graph g(ErdosRenyiGnm(4000, 20000, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeWedgeVector(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(CountWedges(g)));
  SetDefaultThreads(0);
}
BENCHMARK(BM_ComputeWedgeVector)->Arg(1)->Arg(8)->UseRealTime();

void BM_PerEdgeFourCycleCounts(benchmark::State& state) {
  Rng rng(13);
  const Graph g(ErdosRenyiGnm(1500, 9000, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PerEdgeFourCycleCounts(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_PerEdgeFourCycleCounts);

}  // namespace
}  // namespace cyclestream

int main(int argc, char** argv) {
  cyclestream::bench::RequireOptimizedBuild("bm_kernels");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
