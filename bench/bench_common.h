#ifndef CYCLESTREAM_BENCH_BENCH_COMMON_H_
#define CYCLESTREAM_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment binaries (exp_*). Each binary
// regenerates one table of EXPERIMENTS.md; they all follow the same shape:
// build workloads, run R trials per configuration, aggregate with
// Summarize, print a Table. Common flags: --trials, --seed, --csv, --quick,
// --threads.
//
// Trials run in parallel on the process-wide pool (ConfigureThreads /
// --threads). The trial lambdas follow the deterministic contract of
// util/parallel.h: trial t derives every seed from t alone, reads shared
// workload state (EdgeList / Graph / pre-built streams) only through const
// references, and returns its results by value. Aggregation happens
// serially in trial order, so the printed tables are bit-identical at any
// thread count.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/dodg.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "stream/driver.h"
#include "stream/order.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/table.h"

namespace cyclestream::bench {

/// Refuses to run a throughput benchmark from an unoptimized build: numbers
/// from a -O0/assert-enabled binary are meaningless and, committed as a
/// baseline, would poison every later regression comparison. Exits with an
/// error unless NDEBUG is defined; set CYCLESTREAM_BENCH_ALLOW_DEBUG=1 to
/// override (e.g. when smoke-testing the harness itself under a sanitizer).
inline void RequireOptimizedBuild(const char* binary) {
#ifndef NDEBUG
  if (std::getenv("CYCLESTREAM_BENCH_ALLOW_DEBUG") == nullptr) {
    std::cerr
        << "ERROR: " << binary << " was built without NDEBUG (a Debug or "
        << "assert-enabled build).\n"
        << "Benchmark numbers from this binary are not comparable to the\n"
        << "committed Release baselines. Rebuild with "
        << "-DCMAKE_BUILD_TYPE=Release,\n"
        << "or set CYCLESTREAM_BENCH_ALLOW_DEBUG=1 to run anyway.\n";
    std::exit(1);
  }
  std::cerr << "WARNING: " << binary
            << " running without NDEBUG; numbers are not comparable to "
               "Release baselines.\n";
#else
  (void)binary;
#endif
}

/// Reads --threads (0 = hardware concurrency; 1 = serial) and installs it
/// as the process-wide default for the parallel layer. Every experiment
/// driver calls this right after constructing its FlagParser. Returns the
/// resolved thread count.
inline int ConfigureThreads(FlagParser& flags) {
  return ApplyThreadsFlag(flags);
}

/// Reads the robustness flags (--checkpoint_dir, --checkpoint_every,
/// --resume, --kill_after) and installs the process-wide checkpoint
/// configuration; forces --threads=1 when active (see
/// ApplyCheckpointFlags in stream/driver.h).
inline bool ConfigureCheckpointing(FlagParser& flags, int* threads) {
  return ApplyCheckpointFlags(flags, threads);
}

/// Runs `trials` executions of `run` (as run(0..trials-1), concurrently)
/// and returns the per-trial results in trial order — exactly the vector a
/// serial loop would produce. Use this for bespoke trial loops (success
/// counts, multi-output trials); `run` must be thread-safe per the contract
/// above.
template <typename Fn,
          typename R = std::decay_t<std::invoke_result_t<Fn, int>>>
std::vector<R> CollectTrials(int trials, Fn run) {
  return ParallelMap(static_cast<std::size_t>(std::max(0, trials)),
                     [&run](std::size_t t) {
                       return run(static_cast<int>(t));
                     });
}

/// Aggregated accuracy/space over trials of one configuration.
struct TrialStats {
  Summary rel_error;     // |estimate/truth - 1| per trial.
  Summary space_words;
  Summary estimate;
};

/// Aggregates already-collected (estimate, space_words) results against
/// `truth`. Shared by RunTrials and by callers that obtain their per-trial
/// results some other way (the engine's shared-pass batches), so both paths
/// summarize identically.
inline TrialStats SummarizeTrials(
    const std::vector<std::pair<double, std::size_t>>& results, double truth) {
  std::vector<double> errors, spaces, estimates;
  errors.reserve(results.size());
  spaces.reserve(results.size());
  estimates.reserve(results.size());
  for (const auto& [estimate, space] : results) {
    errors.push_back(RelativeError(estimate, truth));
    spaces.push_back(static_cast<double>(space));
    estimates.push_back(estimate);
  }
  TrialStats stats;
  stats.rel_error = Summarize(std::move(errors));
  stats.space_words = Summarize(std::move(spaces));
  stats.estimate = Summarize(std::move(estimates));
  return stats;
}

/// Runs `trials` executions of `run` (seeded 0..trials-1, concurrently)
/// against `truth` and aggregates. `run` returns (estimate, space_words).
inline TrialStats RunTrials(
    int trials, double truth,
    const std::function<std::pair<double, std::size_t>(int)>& run) {
  return SummarizeTrials(CollectTrials(trials, run), truth);
}

/// Standard experiment header: prints the experiment id, the paper claim
/// under test, and the workload description.
inline void PrintHeader(const std::string& id, const std::string& claim,
                        const std::string& workload) {
  std::cout << "\n=====================================================\n"
            << id << "\n"
            << "claim:    " << claim << "\n"
            << "workload: " << workload << "\n"
            << "=====================================================\n";
}

/// Per-run harness shared by every experiment binary: resolves the common
/// flags (--threads, --json_out, --json_det_out, --audit, --checkpoint_dir,
/// --checkpoint_every, --resume, --kill_after), arms the driver-level space
/// audit and checkpointing, and assembles the run manifest. Usage:
///
///   FlagParser flags(argc, argv);
///   bench::ExperimentContext ctx("E2", flags);
///   ... read flags, run, print tables ...
///   ctx.RecordTable("scaling", table);
///   ctx.metrics().SetInt("rows", table.num_rows());
///   return ctx.Finish();
///
/// Finish() folds the global stream-driver counters into the metrics, warns
/// about unused flags on stderr, and writes the manifest when --json_out
/// was given. The deterministic portion of the manifest (config, metrics,
/// tables) is bit-identical at any --threads value; wall-clock timings and
/// environment stamps live in separate sections.
class ExperimentContext {
 public:
  ExperimentContext(const std::string& experiment_id, FlagParser& flags)
      : flags_(flags), manifest_(experiment_id) {
    int threads = ConfigureThreads(flags);
    checkpointing_ = ConfigureCheckpointing(flags, &threads);
    // Every driver's exact ground truth (and the audit path) goes through
    // CountTriangles/CountFourCycles, so installing the backend here makes
    // --exact_backend=dodg work across all experiment binaries at once.
    ApplyExactBackendFlag(flags);
    manifest_.SetThreads(threads);
    json_out_ = flags.GetString("json_out", "");
    json_det_out_ = flags.GetString("json_det_out", "");
    SetSpaceAudit(flags.GetBool("audit", false));
    ResetStreamStats();
  }

  MetricsRegistry& metrics() { return manifest_.metrics(); }

  void RecordTable(const std::string& name, const Table& table) {
    manifest_.AddTable(name, table);
  }

  /// Final bookkeeping; returns the process exit code for main().
  int Finish() {
    const StreamStats stats = GlobalStreamStats();
    MetricsRegistry& m = manifest_.metrics();
    m.SetInt("stream.runs", static_cast<std::int64_t>(stats.runs));
    m.SetInt("stream.passes", static_cast<std::int64_t>(stats.passes));
    if (stats.edges_processed > 0) {
      m.SetInt("stream.edges_processed",
               static_cast<std::int64_t>(stats.edges_processed));
    }
    if (stats.lists_processed > 0) {
      m.SetInt("stream.lists_processed",
               static_cast<std::int64_t>(stats.lists_processed));
    }
    if (SpaceAuditEnabled()) {
      m.SetInt("stream.audits_passed",
               static_cast<std::int64_t>(stats.audits_passed));
    }
    for (int pass = 0; pass < 4; ++pass) {
      if (stats.pass_seconds[pass] > 0.0) {
        m.SetTiming("stream.pass" + std::to_string(pass) + ".seconds",
                    stats.pass_seconds[pass]);
      }
    }
    if (checkpointing_ || stats.checkpoints_written > 0 ||
        stats.checkpoint_failures > 0 || stats.restores > 0 ||
        stats.restore_rejects > 0) {
      m.SetExecution("stream.checkpoints_written",
                     static_cast<std::int64_t>(stats.checkpoints_written));
      m.SetExecution("stream.checkpoint_failures",
                     static_cast<std::int64_t>(stats.checkpoint_failures));
      m.SetExecution("stream.restores",
                     static_cast<std::int64_t>(stats.restores));
      m.SetExecution("stream.restore_rejects",
                     static_cast<std::int64_t>(stats.restore_rejects));
    }
    manifest_.SetConfig(flags_.values());
    WarnUnusedFlags(flags_, std::cerr);
    if (!json_out_.empty()) {
      if (!manifest_.WriteFile(json_out_)) return 1;
      std::cerr << "run manifest written to " << json_out_ << "\n";
    }
    if (!json_det_out_.empty()) {
      std::ofstream out(json_det_out_);
      if (out) out << manifest_.DeterministicJson();
      if (!out) {
        std::cerr << "ERROR: cannot write deterministic manifest to "
                  << json_det_out_ << "\n";
        return 1;
      }
      std::cerr << "deterministic manifest written to " << json_det_out_
                << "\n";
    }
    return 0;
  }

  const RunManifest& manifest() const { return manifest_; }

 private:
  FlagParser& flags_;
  RunManifest manifest_;
  std::string json_out_;
  std::string json_det_out_;
  bool checkpointing_ = false;
};

/// Fits the slope of log(y) against log(x) by least squares — used by the
/// space-scaling experiments to verify exponents (e.g. ≈ -0.5 for m/√T).
inline double LogLogSlope(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (n * sxy - sx * sy) / denom;
}

}  // namespace cyclestream::bench

#endif  // CYCLESTREAM_BENCH_BENCH_COMMON_H_
