#ifndef CYCLESTREAM_BENCH_BENCH_COMMON_H_
#define CYCLESTREAM_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment binaries (exp_*). Each binary
// regenerates one table of EXPERIMENTS.md; they all follow the same shape:
// build workloads, run R trials per configuration, aggregate with
// Summarize, print a Table. Common flags: --trials, --seed, --csv, --quick.

#include <cmath>
#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "graph/exact.h"
#include "graph/graph.h"
#include "stream/order.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace cyclestream::bench {

/// Aggregated accuracy/space over trials of one configuration.
struct TrialStats {
  Summary rel_error;     // |estimate/truth - 1| per trial.
  Summary space_words;
  Summary estimate;
};

/// Runs `trials` executions of `run` (seeded 0..trials-1) against `truth`
/// and aggregates. `run` returns (estimate, space_words).
inline TrialStats RunTrials(
    int trials, double truth,
    const std::function<std::pair<double, std::size_t>(int)>& run) {
  std::vector<double> errors, spaces, estimates;
  errors.reserve(trials);
  for (int t = 0; t < trials; ++t) {
    const auto [estimate, space] = run(t);
    errors.push_back(RelativeError(estimate, truth));
    spaces.push_back(static_cast<double>(space));
    estimates.push_back(estimate);
  }
  TrialStats stats;
  stats.rel_error = Summarize(std::move(errors));
  stats.space_words = Summarize(std::move(spaces));
  stats.estimate = Summarize(std::move(estimates));
  return stats;
}

/// Standard experiment header: prints the experiment id, the paper claim
/// under test, and the workload description.
inline void PrintHeader(const std::string& id, const std::string& claim,
                        const std::string& workload) {
  std::cout << "\n=====================================================\n"
            << id << "\n"
            << "claim:    " << claim << "\n"
            << "workload: " << workload << "\n"
            << "=====================================================\n";
}

/// Fits the slope of log(y) against log(x) by least squares — used by the
/// space-scaling experiments to verify exponents (e.g. ≈ -0.5 for m/√T).
inline double LogLogSlope(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (n * sxy - sx * sy) / denom;
}

}  // namespace cyclestream::bench

#endif  // CYCLESTREAM_BENCH_BENCH_COMMON_H_
