// E10 — Theorem 5.7: one-pass Õ(ε⁻²n)-space 4-cycle counting in arbitrary
// order when T = Ω(n²/ε²), including the dynamic (insert + delete) setting.
// Sweeps density to show the accuracy improving as the regime condition
// kicks in, and exercises a churn schedule of deletions.

#include <iostream>

#include "bench/bench_common.h"
#include "core/arb_f2_counter.h"
#include "gen/generators.h"

namespace cyclestream {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  bench::ExperimentContext ctx("E10", flags);
  const bool quick = flags.GetBool("quick", false);
  const int trials = static_cast<int>(flags.GetInt("trials", quick ? 5 : 9));
  const int copies = static_cast<int>(flags.GetInt("copies", quick ? 128 : 320));

  bench::PrintHeader(
      "E10: one-pass arbitrary-order counting, dynamic streams (Theorem 5.7)",
      "(1+eps) in O~(eps^-2 n) space when T = Omega(n^2/eps^2); supports "
      "deletions",
      "G(n,p) density sweep (insert-only) + churn schedule (insert/delete)");

  const VertexId n = quick ? 150 : 220;
  Table table({"p", "T", "T/n^2", "med.err", "p90.err", "space(w)",
               "graph(w)"});
  for (const double p : {0.10, 0.20, 0.35, 0.5}) {
    Rng gen(1);
    const Graph g(ErdosRenyiGnp(n, p, gen));
    const double t = static_cast<double>(CountFourCycles(g));
    auto stats = bench::RunTrials(trials, t, [&](int trial) {
      Rng rng(100 + trial);
      EdgeStream stream = g.edges();
      rng.Shuffle(stream);
      ArbF2FourCycleCounter::Params params;
      params.base.epsilon = 0.15;
      params.base.seed = 2000 + trial;
      params.num_vertices = g.num_vertices();
      params.copies_per_group = copies;
      const Estimate e = CountFourCyclesArbF2(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow(
        {Table::Num(p, 2), Table::Int(static_cast<std::int64_t>(t)),
         Table::Num(t / (double(n) * n), 2), Table::Pct(stats.rel_error.median),
         Table::Pct(stats.rel_error.p90),
         Table::Int(static_cast<std::int64_t>(stats.space_words.median)),
         Table::Int(2 * static_cast<std::int64_t>(g.num_edges()))});
  }
  table.set_title("insert-only density sweep");
  table.Print(std::cout);

  // Dynamic churn: delete a growing fraction and compare with exact.
  Table churn({"deleted frac", "exact T", "tracked T", "rel.err"});
  Rng gen(3);
  const Graph g(ErdosRenyiGnp(n, 0.35, gen));
  ArbF2FourCycleCounter::Params params;
  params.base.epsilon = 0.15;
  params.base.seed = 7;
  params.num_vertices = g.num_vertices();
  params.copies_per_group = copies;
  ArbF2FourCycleCounter tracker(params);
  for (const Edge& e : g.edges()) tracker.Insert(e);
  std::vector<Edge> live = g.edges();
  Rng churn_rng(8);
  for (const double target_frac : {0.0, 0.25, 0.5, 0.75}) {
    const std::size_t target_live = static_cast<std::size_t>(
        (1.0 - target_frac) * static_cast<double>(g.num_edges()));
    while (live.size() > target_live) {
      const std::size_t victim = churn_rng.UniformInt(live.size());
      tracker.Delete(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    }
    EdgeList snapshot(g.num_vertices());
    for (const Edge& e : live) snapshot.Add(e.u, e.v);
    snapshot.Finalize();
    const double exact = static_cast<double>(CountFourCycles(Graph(snapshot)));
    const double tracked = tracker.Result().value;
    churn.AddRow({Table::Pct(target_frac, 0), Table::Num(exact, 0),
                  Table::Num(tracked, 0),
                  Table::Pct(exact > 0 ? std::abs(tracked - exact) / exact
                                       : tracked)});
  }
  churn.set_title("dynamic churn schedule (p=0.35)");
  churn.Print(std::cout);
  ctx.RecordTable("density_sweep", table);
  ctx.RecordTable("churn", churn);
  return ctx.Finish();
}

}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
