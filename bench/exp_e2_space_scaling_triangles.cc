// E2 — Theorem 2.1 space shape: at fixed m and accuracy target, the §2.1
// algorithm's space should scale like m/√T. We sweep the planted triangle
// count T at fixed m and fit the log-log slope of space vs T (expect ≈ -1/2
// once rates are off their clamps), plus a row sweep of m at fixed T
// (expect slope ≈ +1).

#include <iostream>

#include "bench/bench_common.h"
#include "core/random_order_triangles.h"
#include "gen/generators.h"

namespace cyclestream {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  bench::ExperimentContext ctx("E2", flags);
  const bool quick = flags.GetBool("quick", false);
  const int trials = static_cast<int>(flags.GetInt("trials", quick ? 3 : 7));
  const double epsilon = flags.GetDouble("epsilon", 0.25);

  bench::PrintHeader(
      "E2: space scaling of random-order triangle counting (Theorem 2.1)",
      "space = O~(eps^-2 m / sqrt(T)): log-log slope vs T ~ -1/2, vs m ~ +1",
      "ER base (fixed m) + planted triangles sweeping T; then m-sweep");

  const VertexId n = quick ? 6000 : 12000;
  const std::size_t m = quick ? 24000 : 48000;

  Table t_table({"T", "med.space(w)", "med.err", "stream(w)"});
  std::vector<double> ts, spaces;
  // Start the sweep where cv ≪ √T, i.e. away from the p_i = 1 saturation
  // boundary — the asymptotic exponent only shows there.
  for (std::uint64_t t_plant :
       {std::uint64_t(m) / 100, std::uint64_t(m) / 25, std::uint64_t(m) / 6,
        3 * std::uint64_t(m) / 10}) {
    Rng gen(10);
    // Hold the total edge count at m: planted triangles bring 3 edges each,
    // so shrink the ER base accordingly.
    const std::size_t base_m = m - static_cast<std::size_t>(3 * t_plant);
    EdgeList graph = PlantTriangles(ErdosRenyiGnm(n, base_m, gen), t_plant, gen);
    const double t_exact = static_cast<double>(CountTriangles(Graph(graph)));
    auto stats = bench::RunTrials(trials, t_exact, [&](int trial) {
      Rng rng(700 + trial);
      const EdgeStream stream = MakeRandomOrderStream(graph, rng);
      RandomOrderTriangleCounter::Params params;
      params.base.epsilon = epsilon;
      params.base.c = 1.0;
      params.base.t_guess = t_exact;
      params.base.seed = 7100 + trial;
      params.num_vertices = graph.num_vertices();
      params.level_rate = 4.0;  // Keep level rates off the p_i = 1 clamp.
      const Estimate e = CountTrianglesRandomOrder(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    ts.push_back(t_exact);
    spaces.push_back(stats.space_words.median);
    t_table.AddRow({Table::Int(static_cast<std::int64_t>(t_exact)),
                    Table::Int(static_cast<std::int64_t>(stats.space_words.median)),
                    Table::Pct(stats.rel_error.median),
                    Table::Int(static_cast<std::int64_t>(2 * graph.num_edges()))});
  }
  t_table.set_title("space vs T at fixed m=" + std::to_string(m));
  t_table.Print(std::cout);
  ctx.RecordTable("space_vs_t", t_table);
  ctx.metrics().Set("slope.space_vs_t", bench::LogLogSlope(ts, spaces));
  std::cout << "fitted log-log slope (space vs T): "
            << Table::Num(bench::LogLogSlope(ts, spaces), 3)
            << "   [paper: -0.5; the log(sqrt T) level count and the\n"
               "   saturated low levels flatten it toward ~-0.4 at this scale]\n";

  Table m_table({"m", "med.space(w)", "med.err"});
  std::vector<double> ms, m_spaces;
  const std::uint64_t t_fixed = m / 25;
  for (const std::size_t m_sweep : {m / 4, m / 2, m, 2 * m}) {
    Rng gen(11);
    const std::size_t base_m =
        m_sweep - std::min(m_sweep / 2, static_cast<std::size_t>(3 * t_fixed));
    EdgeList graph =
        PlantTriangles(ErdosRenyiGnm(n, base_m, gen), t_fixed, gen);
    const double t_exact = static_cast<double>(CountTriangles(Graph(graph)));
    auto stats = bench::RunTrials(trials, t_exact, [&](int trial) {
      Rng rng(800 + trial);
      const EdgeStream stream = MakeRandomOrderStream(graph, rng);
      RandomOrderTriangleCounter::Params params;
      params.base.epsilon = epsilon;
      params.base.c = 1.0;
      params.base.t_guess = t_exact;
      params.base.seed = 7200 + trial;
      params.num_vertices = graph.num_vertices();
      params.level_rate = 4.0;
      const Estimate e = CountTrianglesRandomOrder(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    ms.push_back(static_cast<double>(m_sweep));
    m_spaces.push_back(stats.space_words.median);
    m_table.AddRow({Table::Int(static_cast<std::int64_t>(m_sweep)),
                    Table::Int(static_cast<std::int64_t>(stats.space_words.median)),
                    Table::Pct(stats.rel_error.median)});
  }
  m_table.set_title("space vs m at fixed T~" + std::to_string(t_fixed));
  m_table.Print(std::cout);
  ctx.RecordTable("space_vs_m", m_table);
  ctx.metrics().Set("slope.space_vs_m", bench::LogLogSlope(ms, m_spaces));
  std::cout << "fitted log-log slope (space vs m): "
            << Table::Num(bench::LogLogSlope(ms, m_spaces), 3)
            << "   [paper: +1.0]\n";
  return ctx.Finish();
}

}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
