// E2 — Theorem 2.1 space shape: at fixed m and accuracy target, the §2.1
// algorithm's space should scale like m/√T. We sweep the planted triangle
// count T at fixed m and fit the log-log slope of space vs T (expect ≈ -1/2
// once rates are off their clamps), plus a row sweep of m at fixed T
// (expect slope ≈ +1).
//
// The trials of each configuration run as one engine batch: a StreamBroker
// fans a single shared random-order stream out to all trial estimators at
// once (one physical stream read per pass instead of one per trial), with
// per-trial randomness carried entirely by the algorithm seeds. The
// manifest's engine.source_items_read counter documents the sharing.

#include <cstddef>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "engine/broker.h"
#include "engine/query.h"
#include "gen/generators.h"

namespace cyclestream {
namespace {

// Accumulated broker accounting across the sweep's configurations (each
// configuration is its own one-shot broker batch).
struct EngineTotals {
  std::uint64_t source_items_read = 0;
  std::uint64_t items_delivered = 0;
  std::uint64_t physical_passes = 0;

  void Add(const engine::EngineStats& stats) {
    source_items_read += stats.source_items_read;
    items_delivered += stats.items_delivered;
    physical_passes += stats.physical_passes;
  }
};

// Runs `trials` random-order-triangle estimators as one shared-pass engine
// batch over a single stream drawn with `stream_seed`; trial t uses
// algorithm seed seed_base + t.
bench::TrialStats RunEngineTrials(const EdgeList& graph, double t_exact,
                                  int trials, double epsilon,
                                  std::uint64_t stream_seed,
                                  std::uint64_t seed_base,
                                  EngineTotals* totals) {
  Rng rng(stream_seed);
  const EdgeStream stream = MakeRandomOrderStream(graph, rng);
  engine::StreamBroker broker;
  for (int trial = 0; trial < trials; ++trial) {
    engine::QuerySpec spec;
    spec.name = "trial-" + std::to_string(trial);
    spec.kind = engine::QueryKind::kRandomOrderTriangles;
    spec.base.epsilon = epsilon;
    spec.base.c = 1.0;
    spec.base.t_guess = t_exact;
    spec.base.seed = seed_base + static_cast<std::uint64_t>(trial);
    spec.num_vertices = graph.num_vertices();
    spec.level_rate = 4.0;  // Keep level rates off the p_i = 1 clamp.
    broker.AddQuery(std::move(spec));
  }
  std::vector<std::pair<double, std::size_t>> results;
  for (const engine::QueryOutcome& out : broker.RunEdgeQueries(stream)) {
    results.emplace_back(out.estimate.value, out.estimate.space_words);
  }
  totals->Add(broker.stats());
  return bench::SummarizeTrials(results, t_exact);
}

}  // namespace

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  bench::ExperimentContext ctx("E2", flags);
  const bool quick = flags.GetBool("quick", false);
  const int trials = static_cast<int>(flags.GetInt("trials", quick ? 3 : 7));
  const double epsilon = flags.GetDouble("epsilon", 0.25);

  bench::PrintHeader(
      "E2: space scaling of random-order triangle counting (Theorem 2.1)",
      "space = O~(eps^-2 m / sqrt(T)): log-log slope vs T ~ -1/2, vs m ~ +1",
      "ER base (fixed m) + planted triangles sweeping T; then m-sweep");

  const VertexId n = quick ? 6000 : 12000;
  const std::size_t m = quick ? 24000 : 48000;
  EngineTotals totals;

  Table t_table({"T", "med.space(w)", "med.err", "stream(w)"});
  std::vector<double> ts, spaces;
  // Start the sweep where cv ≪ √T, i.e. away from the p_i = 1 saturation
  // boundary — the asymptotic exponent only shows there.
  for (std::uint64_t t_plant :
       {std::uint64_t(m) / 100, std::uint64_t(m) / 25, std::uint64_t(m) / 6,
        3 * std::uint64_t(m) / 10}) {
    Rng gen(10);
    // Hold the total edge count at m: planted triangles bring 3 edges each,
    // so shrink the ER base accordingly.
    const std::size_t base_m = m - static_cast<std::size_t>(3 * t_plant);
    EdgeList graph = PlantTriangles(ErdosRenyiGnm(n, base_m, gen), t_plant, gen);
    const double t_exact = static_cast<double>(CountTriangles(Graph(graph)));
    const auto stats = RunEngineTrials(graph, t_exact, trials, epsilon,
                                       /*stream_seed=*/700, /*seed_base=*/7100,
                                       &totals);
    ts.push_back(t_exact);
    spaces.push_back(stats.space_words.median);
    t_table.AddRow({Table::Int(static_cast<std::int64_t>(t_exact)),
                    Table::Int(static_cast<std::int64_t>(stats.space_words.median)),
                    Table::Pct(stats.rel_error.median),
                    Table::Int(static_cast<std::int64_t>(2 * graph.num_edges()))});
  }
  t_table.set_title("space vs T at fixed m=" + std::to_string(m));
  t_table.Print(std::cout);
  ctx.RecordTable("space_vs_t", t_table);
  ctx.metrics().Set("slope.space_vs_t", bench::LogLogSlope(ts, spaces));
  std::cout << "fitted log-log slope (space vs T): "
            << Table::Num(bench::LogLogSlope(ts, spaces), 3)
            << "   [paper: -0.5; the log(sqrt T) level count and the\n"
               "   saturated low levels flatten it toward ~-0.4 at this scale]\n";

  Table m_table({"m", "med.space(w)", "med.err"});
  std::vector<double> ms, m_spaces;
  const std::uint64_t t_fixed = m / 25;
  for (const std::size_t m_sweep : {m / 4, m / 2, m, 2 * m}) {
    Rng gen(11);
    const std::size_t base_m =
        m_sweep - std::min(m_sweep / 2, static_cast<std::size_t>(3 * t_fixed));
    EdgeList graph =
        PlantTriangles(ErdosRenyiGnm(n, base_m, gen), t_fixed, gen);
    const double t_exact = static_cast<double>(CountTriangles(Graph(graph)));
    const auto stats = RunEngineTrials(graph, t_exact, trials, epsilon,
                                       /*stream_seed=*/800, /*seed_base=*/7200,
                                       &totals);
    ms.push_back(static_cast<double>(m_sweep));
    m_spaces.push_back(stats.space_words.median);
    m_table.AddRow({Table::Int(static_cast<std::int64_t>(m_sweep)),
                    Table::Int(static_cast<std::int64_t>(stats.space_words.median)),
                    Table::Pct(stats.rel_error.median)});
  }
  m_table.set_title("space vs m at fixed T~" + std::to_string(t_fixed));
  m_table.Print(std::cout);
  ctx.RecordTable("space_vs_m", m_table);
  ctx.metrics().Set("slope.space_vs_m", bench::LogLogSlope(ms, m_spaces));
  std::cout << "fitted log-log slope (space vs m): "
            << Table::Num(bench::LogLogSlope(ms, m_spaces), 3)
            << "   [paper: +1.0]\n";

  // One stream read per logical pass, shared by all trials: delivered =
  // read × trials when every query is admitted.
  ctx.metrics().SetInt("engine.source_items_read",
                       static_cast<std::int64_t>(totals.source_items_read));
  ctx.metrics().SetInt("engine.items_delivered",
                       static_cast<std::int64_t>(totals.items_delivered));
  ctx.metrics().SetInt("engine.physical_passes",
                       static_cast<std::int64_t>(totals.physical_passes));
  return ctx.Finish();
}

}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
