// E12 — Lemma 5.1 (structural): calling an edge bad if it lies in at least
// η√T 4-cycles, at least T(1 − 82/η) cycles contain at most one bad edge.
// We measure the actual fraction of cycles with ≥2 bad edges on adversarial
// instances (diamond packs, bipartite cores, dense ER) across η and compare
// with the lemma's 82/η budget.

#include <iostream>

#include "bench/bench_common.h"
#include "gen/generators.h"

namespace cyclestream {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  bench::ExperimentContext ctx("E12", flags);
  const bool quick = flags.GetBool("quick", false);

  bench::PrintHeader(
      "E12: structural Lemma 5.1",
      "#cycles with >=2 bad edges <= 82T/eta (bad = in >= eta*sqrt(T) "
      "cycles)",
      "diamond packs, complete bipartite, dense ER — structures that "
      "maximize bad-edge sharing");

  struct Workload {
    std::string name;
    EdgeList graph;
  };
  std::vector<Workload> workloads;
  {
    Rng gen(1);
    EdgeList base(1);
    base.Finalize();
    workloads.push_back(
        {"diamond-pack",
         PlantDiamonds(std::move(base),
                       {DiamondSpec{30, 4}, DiamondSpec{6, 40}}, gen)});
  }
  workloads.push_back({"complete-bip", CompleteBipartite(quick ? 20 : 30,
                                                         quick ? 20 : 30)});
  {
    Rng gen(2);
    workloads.push_back(
        {"dense-er", ErdosRenyiGnp(quick ? 120 : 200, 0.2, gen)});
  }
  {
    Rng gen(3);
    workloads.push_back({"ba", BarabasiAlbert(quick ? 1500 : 4000, 4, gen)});
  }
  {
    // Theta gadget: one edge in half of all 4-cycles — the workload where
    // "bad" edges genuinely exist up to eta ~ t(spine)/sqrt(T).
    Rng gen(4);
    workloads.push_back(
        {"theta", PlantTheta(ErdosRenyiGnm(quick ? 400 : 800,
                                           quick ? 800 : 1600, gen),
                             quick ? 300 : 600, gen)});
  }

  Table table({"workload", "T", "tmax/sqrtT", "eta", "bad edges",
               "frac >=2 bad", "lemma budget 82/eta"});
  const double etas[] = {0.25, 1.0, 4.0, 16.0, 82.0};
  struct WorkloadResult {
    double t = 0;
    double ratio = 0;
    std::vector<FourCycleHeavinessProfile> profiles;
  };
  // The exact counts and heaviness profiles dominate the runtime; each
  // workload is processed on the pool, rows are emitted serially below.
  const auto results = ParallelMap(workloads.size(), [&](std::size_t i) {
    const Graph g(workloads[i].graph);
    WorkloadResult r;
    r.t = static_cast<double>(CountFourCycles(g));
    if (r.t < 1) return r;
    std::uint64_t t_max = 0;
    for (const auto c : PerEdgeFourCycleCounts(g)) t_max = std::max(t_max, c);
    r.ratio = static_cast<double>(t_max) / std::sqrt(r.t);
    for (const double eta : etas) {
      const auto threshold =
          static_cast<std::uint64_t>(std::ceil(eta * std::sqrt(r.t)));
      r.profiles.push_back(ProfileFourCycleHeaviness(g, threshold));
    }
    return r;
  });
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const WorkloadResult& r = results[i];
    if (r.t < 1) continue;
    for (std::size_t j = 0; j < r.profiles.size(); ++j) {
      const FourCycleHeavinessProfile& profile = r.profiles[j];
      const double eta = etas[j];
      const double multi_bad =
          static_cast<double>(profile.with_bad[2] + profile.with_bad[3] +
                              profile.with_bad[4]);
      table.AddRow({workloads[i].name,
                    Table::Int(static_cast<std::int64_t>(r.t)),
                    Table::Num(r.ratio, 2), Table::Num(eta, 2),
                    Table::Int(static_cast<std::int64_t>(profile.bad_edges)),
                    Table::Pct(profile.total ? multi_bad / profile.total : 0),
                    Table::Pct(std::min(1.0, 82.0 / eta))});
    }
  }
  table.Print(std::cout);
  std::cout << "(the lemma holds iff 'frac >=2 bad' <= 'lemma budget' on "
               "every row; the bound is loose by design)\n";
  ctx.RecordTable("heaviness", table);
  return ctx.Finish();
}

}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
