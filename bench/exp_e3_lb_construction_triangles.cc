// E3 — Figure 1 / Theorem 2.6: the random-order triangle lower-bound
// gadget. Reproduces the figure's construction and demonstrates the
// phenomenon the Ω(m/√T) bound predicts empirically:
//   (a) the gadget has exactly T triangles (planted bit = 1) or none,
//   (b) a prefix of length ≈ m/√T carries no information about which
//       (u*, v*) pair shares a W-neighborhood — measured by the best
//       achievable prefix-based distinguisher statistic,
//   (c) a sampling tester below the Θ(m/√T) space threshold fails to
//       distinguish planted from unplanted, while at/above it succeeds.

#include <iostream>

#include "baselines/naive_sampling.h"
#include "bench/bench_common.h"
#include "gen/lower_bound.h"

namespace cyclestream {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  bench::ExperimentContext ctx("E3", flags);
  const bool quick = flags.GetBool("quick", false);
  const int trials = static_cast<int>(flags.GetInt("trials", quick ? 20 : 60));
  const VertexId n = static_cast<VertexId>(flags.GetInt("n", quick ? 40 : 80));

  bench::PrintHeader(
      "E3: triangle lower-bound construction (Fig. 1, Theorem 2.6)",
      "Omega(m/sqrt(T)) space needed to distinguish 0 vs T triangles in "
      "random order, for T <= sqrt(m)",
      "Fig. 1 tripartite gadget, n=" + std::to_string(n) +
          ", sweeping T");

  // (a) Construction correctness across T.
  Table build_table({"T", "m", "tri(planted)", "tri(unplanted)"});
  for (const std::uint64_t t : {1ull, 4ull, 16ull, 64ull}) {
    Rng rng(50 + t);
    const auto yes = MakeTriangleLowerBoundGadget(n, t, true, rng);
    Rng rng2(90 + t);
    const auto no = MakeTriangleLowerBoundGadget(n, t, false, rng2);
    build_table.AddRow(
        {Table::Int(static_cast<std::int64_t>(t)),
         Table::Int(static_cast<std::int64_t>(yes.graph.num_edges())),
         Table::Int(static_cast<std::int64_t>(CountTriangles(Graph(yes.graph)))),
         Table::Int(static_cast<std::int64_t>(CountTriangles(Graph(no.graph))))});
  }
  build_table.set_title("(a) gadget correctness");
  build_table.Print(std::cout);

  // (b) Prefix blindness: in a random-order stream, does a prefix of length
  // c·m/√T reveal the starred pair (u*, v*)? The identity leaks only once
  // the prefix contains a W-vertex with both its star edges; the expected
  // number of such witnesses is T·(c/√T)² = c². Theorem 2.7 takes
  // c = 1/√10 so that the leak probability stays below c² = 0.1 — we sweep
  // c to show the visibility turning on exactly there.
  const std::uint64_t t_fixed = quick ? 9 : 25;
  Table blind({"prefix c", "prefix edges", "star visible",
               "predicted 1-e^{-c^2}"});
  for (const double c : {0.1, 1.0 / std::sqrt(10.0), 1.0, 2.0}) {
    const auto outcomes = bench::CollectTrials(trials, [&](int trial) {
      Rng rng(200 + trial);
      const auto gadget = MakeTriangleLowerBoundGadget(n, t_fixed, true, rng);
      Rng order_rng(300 + trial);
      EdgeStream stream = gadget.graph.edges();
      order_rng.Shuffle(stream);
      const std::size_t prefix = static_cast<std::size_t>(
          c * static_cast<double>(stream.size()) /
          std::sqrt(static_cast<double>(t_fixed)));
      // Collect W-neighborhoods in the prefix; the star pair is visible iff
      // some W-vertex shows two distinct U∪V neighbors (all neighborhoods
      // are disjoint except the starred pair's).
      std::unordered_map<VertexId, std::vector<VertexId>> w_nbrs;
      const VertexId w_base = 2 * n;
      bool visible = false;
      for (std::size_t i = 0; i < std::min(prefix, stream.size()); ++i) {
        const Edge& e = stream[i];
        if (e.v >= w_base) {
          auto& members = w_nbrs[e.v];
          members.push_back(e.u);
          if (members.size() >= 2) visible = true;
        }
      }
      return std::make_pair(visible, prefix);
    });
    int star_visible = 0;
    std::size_t prefix = 0;
    for (const auto& [visible, trial_prefix] : outcomes) {
      if (visible) ++star_visible;
      prefix = trial_prefix;
    }
    blind.AddRow({Table::Num(c, 3),
                  Table::Int(static_cast<std::int64_t>(prefix)),
                  Table::Pct(double(star_visible) / trials),
                  Table::Pct(1.0 - std::exp(-c * c))});
  }
  blind.set_title("(b) prefix blindness (T=" + std::to_string(t_fixed) +
                  "; leak probability 1-exp(-c^2) ~ c^2 for small c)");
  blind.Print(std::cout);

  // (c) Space-accuracy cliff for a sampling tester: naive edge sampling at
  // rate p distinguishes iff it catches a triangle; success needs
  // p ≈ T^{-1/3}-ish per triangle... sweep p and report separation.
  Table cliff({"sample rate", "space(w)", "planted hit%", "unplanted hit%"});
  for (const double rate : {0.05, 0.15, 0.3, 0.6, 0.9}) {
    struct Outcome {
      bool hit_yes = false;
      bool hit_no = false;
      std::size_t space = 0;
    };
    const auto outcomes = bench::CollectTrials(trials, [&](int trial) {
      Rng rng(400 + trial);
      const auto yes = MakeTriangleLowerBoundGadget(n, t_fixed, true, rng);
      Rng rng2(500 + trial);
      const auto no = MakeTriangleLowerBoundGadget(n, t_fixed, false, rng2);
      Rng order(600 + trial);
      EdgeStream sy = yes.graph.edges();
      order.Shuffle(sy);
      EdgeStream sn = no.graph.edges();
      order.Shuffle(sn);
      const auto ey = NaiveSampleTriangles(
          sy, {rate, static_cast<std::uint64_t>(700 + trial)});
      const auto en = NaiveSampleTriangles(
          sn, {rate, static_cast<std::uint64_t>(700 + trial)});
      return Outcome{ey.value > 0, en.value > 0, ey.space_words};
    });
    int hits_yes = 0, hits_no = 0;
    std::size_t space = 0;
    for (const Outcome& o : outcomes) {
      hits_yes += o.hit_yes ? 1 : 0;
      hits_no += o.hit_no ? 1 : 0;
      space = o.space;
    }
    cliff.AddRow({Table::Num(rate, 2),
                  Table::Int(static_cast<std::int64_t>(space)),
                  Table::Pct(double(hits_yes) / trials),
                  Table::Pct(double(hits_no) / trials)});
  }
  cliff.set_title("(c) sampling-tester space cliff (T=" +
                  std::to_string(t_fixed) + ")");
  cliff.Print(std::cout);
  ctx.RecordTable("gadget_correctness", build_table);
  ctx.RecordTable("prefix_blindness", blind);
  ctx.RecordTable("sampling_cliff", cliff);
  return ctx.Finish();
}

}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
