// E13 — the paper's implicit "Table 1" (the §1.1 results list): every
// algorithm in the paper, side by side, on shared workloads — model, passes,
// accuracy, and space. This is the one-stop overview table.

#include <iostream>

#include "baselines/bera_chakrabarti.h"
#include "baselines/cormode_jowhari.h"
#include "baselines/naive_sampling.h"
#include "baselines/triest.h"
#include "bench/bench_common.h"
#include "core/adj_f2_counter.h"
#include "core/adj_l2_counter.h"
#include "core/arb_distinguisher.h"
#include "core/arb_f2_counter.h"
#include "core/arb_three_pass.h"
#include "core/diamond_counter.h"
#include "core/random_order_triangles.h"
#include "gen/generators.h"
#include "graph/datasets.h"

namespace cyclestream {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  bench::ExperimentContext ctx("E13", flags);
  const bool quick = flags.GetBool("quick", false);
  const int trials = static_cast<int>(flags.GetInt("trials", quick ? 3 : 7));

  bench::PrintHeader(
      "E13: summary — every algorithm of the paper (the s1.1 results list)",
      "see DESIGN.md for the claimed bounds per row",
      "triangles: ER+planted+book, random order; 4-cycles: diamond-planted ER "
      "(sparse) and dense G(n,p)");

  Table table({"target", "model", "passes", "algorithm", "med.err",
               "med.space(w)", "stream(w)"});

  // ---- Triangles: ER + planted, random order (T large enough for the
  // m/sqrt(T) budget to beat storing the stream). ----
  {
    Rng gen(1);
    const VertexId tn = quick ? 8000 : 16000;
    const std::size_t base_m = quick ? 9000 : 16000;
    const std::size_t plant = quick ? 16000 : 30000;
    // Mix in a heavy "book" edge (pages = plant/4 triangles through one
    // edge): the workload where the (3+eps) baseline loses its constant.
    EdgeList graph = PlantBook(
        PlantTriangles(ErdosRenyiGnm(tn, base_m, gen), plant, gen),
        plant / 4, gen);
    const double t = static_cast<double>(CountTriangles(Graph(graph)));
    const std::int64_t stream_words =
        2 * static_cast<std::int64_t>(graph.num_edges());

    auto ours = bench::RunTrials(trials, t, [&](int trial) {
      Rng rng(100 + trial);
      const EdgeStream stream = MakeRandomOrderStream(graph, rng);
      RandomOrderTriangleCounter::Params params;
      params.base.epsilon = 0.2;
      params.base.c = 1.5;
      params.base.t_guess = std::max(1.0, t);
      params.base.seed = 1000 + trial;
      params.num_vertices = graph.num_vertices();
      params.level_rate = 8.0;  // Sublinear regime (see E2).
      const Estimate e = CountTrianglesRandomOrder(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow({"triangles", "random", "1", "mv20 s2.1 (Thm 2.1)",
                  Table::Pct(ours.rel_error.median),
                  Table::Int(static_cast<std::int64_t>(ours.space_words.median)),
                  Table::Int(stream_words)});

    auto cj = bench::RunTrials(trials, t, [&](int trial) {
      Rng rng(200 + trial);
      const EdgeStream stream = MakeRandomOrderStream(graph, rng);
      CormodeJowhariCounter::Params params;
      params.base.epsilon = 0.2;
      params.base.c = 1.5;
      params.base.t_guess = std::max(1.0, t);
      params.base.seed = 1100 + trial;
      const Estimate e = CountTrianglesCormodeJowhari(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow({"triangles", "random", "1", "cormode-jowhari'17",
                  Table::Pct(cj.rel_error.median),
                  Table::Int(static_cast<std::int64_t>(cj.space_words.median)),
                  Table::Int(stream_words)});

    auto triest = bench::RunTrials(trials, t, [&](int trial) {
      Rng rng(300 + trial);
      const EdgeStream stream = MakeRandomOrderStream(graph, rng);
      Triest::Params params;
      params.reservoir_capacity =
          std::max<std::size_t>(16,
                                static_cast<std::size_t>(ours.space_words.median) / 2);
      params.seed = 1200 + trial;
      Triest algo(params);
      RunEdgeStream(algo, stream);
      const Estimate e = algo.Result();
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow({"triangles", "arbitrary", "1", "triest-impr'16",
                  Table::Pct(triest.rel_error.median),
                  Table::Int(static_cast<std::int64_t>(triest.space_words.median)),
                  Table::Int(stream_words)});
  }

  // ---- 4-cycles: sparse diamond-planted ER. ----
  {
    Rng gen(2);
    const VertexId n = quick ? 2000 : 5000;
    EdgeList graph = PlantDiamonds(
        ErdosRenyiGnm(n, quick ? 6000 : 15000, gen),
        {DiamondSpec{10, 40}, DiamondSpec{4, 100}}, gen);
    const Graph g(graph);
    const double t = static_cast<double>(CountFourCycles(g));
    const std::int64_t stream_words = 2 * static_cast<std::int64_t>(g.num_edges());

    auto diamonds = bench::RunTrials(trials, t, [&](int trial) {
      Rng rng(400 + trial);
      const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
      DiamondFourCycleCounter::Params params;
      params.base.epsilon = 0.25;
      params.base.c = 2.0;
      params.base.t_guess = std::max(1.0, t);
      params.base.seed = 1300 + trial;
      params.num_vertices = g.num_vertices();
      params.vertex_rate_scale = 0.0625;  // See E5: cancels eps^-2.
      params.edge_rate_scale = 0.0625;
      params.max_shifts = 3;
      const Estimate e = CountFourCyclesDiamond(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow({"4-cycles", "adj-list", "2", "mv20 diamonds (Thm 4.2)",
                  Table::Pct(diamonds.rel_error.median),
                  Table::Int(static_cast<std::int64_t>(diamonds.space_words.median)),
                  Table::Int(stream_words)});

    auto three_pass = bench::RunTrials(trials, t, [&](int trial) {
      Rng rng(500 + trial);
      EdgeStream stream = g.edges();
      rng.Shuffle(stream);
      ArbThreePassFourCycleCounter::Params params;
      params.base.epsilon = 0.3;
      params.base.c = 1.0;
      params.base.t_guess = std::max(1.0, t);
      params.base.seed = 1400 + trial;
      params.num_vertices = g.num_vertices();
      params.eta = 24.0;
      params.rate_scale = 2.0 * 0.09 /
                          std::log2(double(g.num_vertices()) + 2.0);
      const Estimate e = CountFourCyclesArbThreePass(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow({"4-cycles", "arbitrary", "3", "mv20 3-pass (Thm 5.3)",
                  Table::Pct(three_pass.rel_error.median),
                  Table::Int(static_cast<std::int64_t>(three_pass.space_words.median)),
                  Table::Int(stream_words)});

    auto bc = bench::RunTrials(trials, t, [&](int trial) {
      Rng rng(600 + trial);
      EdgeStream stream = g.edges();
      rng.Shuffle(stream);
      BeraChakrabartiCounter::Params params;
      params.base.epsilon = 0.3;
      params.base.c = 1.0;
      params.base.t_guess = std::max(1.0, t);
      params.base.seed = 1500 + trial;
      params.num_pairs = static_cast<std::int64_t>(
          std::min(500000.0, params.base.c * double(stream.size()) *
                                 double(stream.size()) / (0.09 * t)));
      const Estimate e = CountFourCyclesBeraChakrabarti(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow({"4-cycles", "arbitrary", "2", "bera-chakrabarti'17",
                  Table::Pct(bc.rel_error.median),
                  Table::Int(static_cast<std::int64_t>(bc.space_words.median)),
                  Table::Int(stream_words)});
  }

  // ---- 4-cycles: dense G(n,p) (the T = Ω(n²) regime). ----
  {
    Rng gen(3);
    const VertexId n = quick ? 130 : 200;
    const Graph g(ErdosRenyiGnp(n, 0.3, gen));
    const double t = static_cast<double>(CountFourCycles(g));
    const std::int64_t stream_words = 2 * static_cast<std::int64_t>(g.num_edges());

    auto adj_f2 = bench::RunTrials(trials, t, [&](int trial) {
      Rng rng(700 + trial);
      const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
      AdjF2FourCycleCounter::Params params;
      params.base.epsilon = 0.15;
      params.base.t_guess = std::max(1.0, t);
      params.base.seed = 1600 + trial;
      params.num_vertices = g.num_vertices();
      params.copies_per_group = quick ? 96 : 160;
      const Estimate e = CountFourCyclesAdjF2(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow({"4-cycles", "adj-list", "1", "mv20 F2/F1 (Thm 4.3a)",
                  Table::Pct(adj_f2.rel_error.median),
                  Table::Int(static_cast<std::int64_t>(adj_f2.space_words.median)),
                  Table::Int(stream_words)});

    auto adj_l2 = bench::RunTrials(std::max(2, trials / 2), t, [&](int trial) {
      Rng rng(800 + trial);
      const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
      AdjL2FourCycleCounter::Params params;
      params.base.epsilon = 0.2;
      params.base.t_guess = std::max(1.0, t);
      params.base.seed = 1700 + trial;
      params.num_vertices = g.num_vertices();
      params.sampler_copies = quick ? 128 : 384;
      const Estimate e = CountFourCyclesAdjL2(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow({"4-cycles", "adj-list", "1", "mv20 l2-sampling (Thm 4.3b)",
                  Table::Pct(adj_l2.rel_error.median),
                  Table::Int(static_cast<std::int64_t>(adj_l2.space_words.median)),
                  Table::Int(stream_words)});

    auto arb_f2 = bench::RunTrials(trials, t, [&](int trial) {
      Rng rng(900 + trial);
      EdgeStream stream = g.edges();
      rng.Shuffle(stream);
      ArbF2FourCycleCounter::Params params;
      params.base.epsilon = 0.15;
      params.base.seed = 1800 + trial;
      params.num_vertices = g.num_vertices();
      params.copies_per_group = quick ? 128 : 320;
      const Estimate e = CountFourCyclesArbF2(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow({"4-cycles", "arb+dynamic", "1", "mv20 3n-counter (Thm 5.7)",
                  Table::Pct(arb_f2.rel_error.median),
                  Table::Int(static_cast<std::int64_t>(arb_f2.space_words.median)),
                  Table::Int(stream_words)});
  }
  table.Print(std::cout);
  ctx.RecordTable("summary", table);
  return ctx.Finish();
}

}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
