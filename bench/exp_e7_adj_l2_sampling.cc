// E7 — Theorem 4.3b: one-pass adjacency-list 4-cycle counting via ℓ₂
// sampling of the wedge vector, Õ(Δ + ε⁻²n²/T) space. Validates the
// sampler's distribution (a planted heavy wedge pair must be drawn with
// frequency ∝ x²/F₂) and the end-to-end estimate on dense instances.

#include <iostream>
#include <unordered_map>

#include "bench/bench_common.h"
#include "core/adj_l2_counter.h"
#include "gen/generators.h"
#include "sketch/l2_sampler.h"

namespace cyclestream {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  bench::ExperimentContext ctx("E7", flags);
  const bool quick = flags.GetBool("quick", false);
  const int trials = static_cast<int>(flags.GetInt("trials", quick ? 3 : 5));

  bench::PrintHeader(
      "E7: one-pass 4-cycle counting via l2 sampling (Theorem 4.3b)",
      "(1+eps) in O~(Delta + eps^-2 n^2/T) space via l2 samples of the "
      "wedge vector",
      "dense G(n,p) + sampler-distribution validation on a planted vector");

  // (a) Sampler distribution: x with one coordinate 16, one 8, rest 1.
  {
    const int sampler_trials = quick ? 150 : 400;
    const auto trial_draws = bench::CollectTrials(sampler_trials, [](int t) {
      L2Sampler::Config config;
      config.copies = 8;
      config.sketch_width = 128;
      L2Sampler sampler(config, 9000 + t);
      sampler.Update(900001, 16.0);
      sampler.Update(900002, 8.0);
      for (int i = 0; i < 60; ++i) sampler.Update(i, 1.0);
      std::vector<std::uint64_t> keys;
      for (const auto& s : sampler.DrawAll()) keys.push_back(s.key);
      return keys;
    });
    std::unordered_map<std::uint64_t, int> draws;
    int total = 0;
    for (const auto& keys : trial_draws) {
      for (const std::uint64_t key : keys) {
        ++draws[key];
        ++total;
      }
    }
    const double f2 = 16.0 * 16 + 8 * 8 + 60;
    Table dist({"coordinate", "x", "target x^2/F2", "observed freq"});
    dist.AddRow({"planted-16", "16", Table::Pct(256.0 / f2),
                 Table::Pct(total ? double(draws[900001]) / total : 0)});
    dist.AddRow({"planted-8", "8", Table::Pct(64.0 / f2),
                 Table::Pct(total ? double(draws[900002]) / total : 0)});
    dist.set_title("(a) l2-sampler distribution (" + std::to_string(total) +
                   " draws)");
    dist.Print(std::cout);
    ctx.RecordTable("sampler_distribution", dist);
  }

  // (b) End-to-end estimates.
  Table table({"graph", "T", "med.err", "p90.err", "med.space(w)",
               "samples"});
  struct Config {
    std::string name;
    VertexId n;
    double p;
  };
  for (const Config& config :
       {Config{"gnp-dense", static_cast<VertexId>(quick ? 70 : 110), 0.35},
        Config{"gnp-mid", static_cast<VertexId>(quick ? 90 : 140), 0.25}}) {
    Rng gen(1);
    const Graph g(ErdosRenyiGnp(config.n, config.p, gen));
    const double t = static_cast<double>(CountFourCycles(g));
    struct TrialOut {
      double value = 0;
      std::size_t space = 0;
      std::size_t samples = 0;
    };
    const auto results = bench::CollectTrials(trials, [&](int trial) {
      Rng rng(100 + trial);
      const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
      AdjL2FourCycleCounter::Params params;
      params.base.epsilon = 0.2;
      params.base.t_guess = std::max(1.0, t);
      params.base.seed = 5000 + trial;
      params.num_vertices = g.num_vertices();
      params.sampler_copies = quick ? 128 : 256;
      AdjL2FourCycleCounter counter(params);
      RunAdjacencyStream(counter, stream);
      return TrialOut{counter.Result().value, counter.Result().space_words,
                      counter.SamplesUsed()};
    });
    std::vector<double> errors, spaces;
    std::size_t samples_used = 0;
    for (const TrialOut& r : results) {
      errors.push_back(RelativeError(r.value, t));
      spaces.push_back(static_cast<double>(r.space));
      samples_used = r.samples;
    }
    const Summary err = Summarize(std::move(errors));
    const Summary space = Summarize(std::move(spaces));
    table.AddRow({config.name, Table::Int(static_cast<std::int64_t>(t)),
                  Table::Pct(err.median),
                  Table::Pct(err.p90),
                  Table::Int(static_cast<std::int64_t>(space.median)),
                  Table::Int(static_cast<std::int64_t>(samples_used))});
  }
  table.set_title("(b) end-to-end");
  table.Print(std::cout);
  ctx.RecordTable("end_to_end", table);
  return ctx.Finish();
}

}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
