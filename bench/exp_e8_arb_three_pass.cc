// E8 — Theorem 5.3: the three-pass arbitrary-order 4-cycle counter in
// Õ(m/T^{1/4}) space, vs the Bera–Chakrabarti-style Õ(ε⁻²m²/T) pair
// sampler. The paper's crossover: MV20 wins (less space at equal accuracy)
// whenever T <= m^{4/3}. Includes the oracle ablation and a space-scaling
// sweep (expected slope vs T: -1/4).

#include <iostream>

#include "baselines/bera_chakrabarti.h"
#include "bench/bench_common.h"
#include "core/arb_three_pass.h"
#include "gen/generators.h"

namespace cyclestream {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  bench::ExperimentContext ctx("E8", flags);
  const bool quick = flags.GetBool("quick", false);
  const int trials = static_cast<int>(flags.GetInt("trials", quick ? 5 : 9));
  const double epsilon = flags.GetDouble("epsilon", 0.3);

  bench::PrintHeader(
      "E8: arbitrary-order 3-pass 4-cycle counting (Theorem 5.3)",
      "(1+eps) in O~(m/T^{1/4}) — first sublinear arbitrary-order counter "
      "for any T = omega(1); beats Bera-Chakrabarti (m^2/T) when T <= "
      "m^{4/3}",
      "ER + planted C4s, sweeping T at fixed m; diamond-heavy instance for "
      "the oracle");

  const VertexId n = quick ? 2500 : 6000;
  const std::size_t m = quick ? 7500 : 18000;

  Table table({"T", "algorithm", "med.err", "p90.err", "med.space(w)"});
  std::vector<double> ts, spaces, abl_spaces;
  // Fixed total m: the planted diamond pack always gets an m/4 edge budget
  // (2·h·count = m/4), so T ≈ m(h−1)/16 sweeps while m stays put.
  for (const std::uint32_t h : {3u, 6u, 16u, 48u}) {
    const std::size_t count = std::max<std::size_t>(1, m / (8 * h));
    Rng gen(1);
    EdgeList graph =
        PlantDiamonds(ErdosRenyiGnm(n, m - 2 * h * count, gen),
                      {DiamondSpec{h, count}}, gen);
    const Graph g(graph);
    const double t = static_cast<double>(CountFourCycles(g));

    auto ours = bench::RunTrials(trials, t, [&](int trial) {
      Rng rng(100 + trial);
      EdgeStream stream = g.edges();
      rng.Shuffle(stream);
      ArbThreePassFourCycleCounter::Params params;
      params.base.epsilon = epsilon;
      params.base.c = 1.0;
      params.base.t_guess = t;
      params.base.seed = 4000 + trial;
      params.num_vertices = g.num_vertices();
      params.eta = 50.0;
      // Cancel the theoretical log n / eps^-2 factors that saturate p at
      // this scale: p = 2/T^{1/4}.
      params.rate_scale = 2.0 * epsilon * epsilon /
                          std::log2(double(g.num_vertices()) + 2.0);
      const Estimate e = CountFourCyclesArbThreePass(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow({Table::Int(static_cast<std::int64_t>(t)), "mv20-3pass",
                  Table::Pct(ours.rel_error.median),
                  Table::Pct(ours.rel_error.p90),
                  Table::Int(static_cast<std::int64_t>(ours.space_words.median))});
    ts.push_back(t);
    spaces.push_back(ours.space_words.median);

    // Bera–Chakrabarti at the pair budget its bound prescribes for this
    // accuracy target.
    auto bc = bench::RunTrials(trials, t, [&](int trial) {
      Rng rng(200 + trial);
      EdgeStream stream = g.edges();
      rng.Shuffle(stream);
      BeraChakrabartiCounter::Params params;
      params.base.epsilon = epsilon;
      params.base.c = 2.0;
      params.base.t_guess = t;
      params.base.seed = 4100 + trial;
      // Keep the m^2/T budget but cap it for tractability; the space
      // column still reports the capped figure honestly.
      params.num_pairs = static_cast<std::int64_t>(std::min(
          quick ? 400000.0 : 1000000.0,
          params.base.c * double(stream.size()) * double(stream.size()) /
              (epsilon * epsilon * t)));
      const Estimate e = CountFourCyclesBeraChakrabarti(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow({Table::Int(static_cast<std::int64_t>(t)), "bera-chakrabarti",
                  Table::Pct(bc.rel_error.median),
                  Table::Pct(bc.rel_error.p90),
                  Table::Int(static_cast<std::int64_t>(bc.space_words.median))});

    // Oracle ablation (A0-only).
    auto ablation = bench::RunTrials(trials, t, [&](int trial) {
      Rng rng(300 + trial);
      EdgeStream stream = g.edges();
      rng.Shuffle(stream);
      ArbThreePassFourCycleCounter::Params params;
      params.base.epsilon = epsilon;
      params.base.c = 1.0;
      params.base.t_guess = t;
      params.base.seed = 4200 + trial;
      params.num_vertices = g.num_vertices();
      params.use_oracle = false;
      params.rate_scale = 2.0 * epsilon * epsilon /
                          std::log2(double(g.num_vertices()) + 2.0);
      const Estimate e = CountFourCyclesArbThreePass(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    table.AddRow({Table::Int(static_cast<std::int64_t>(t)), "ablation:no-oracle",
                  Table::Pct(ablation.rel_error.median),
                  Table::Pct(ablation.rel_error.p90),
                  Table::Int(static_cast<std::int64_t>(ablation.space_words.median))});
    abl_spaces.push_back(ablation.space_words.median);
  }
  table.Print(std::cout);
  ctx.RecordTable("results", table);
  ctx.metrics().Set("slope.space_vs_t.no_oracle",
                    bench::LogLogSlope(ts, abl_spaces));
  ctx.metrics().Set("slope.space_vs_t.full", bench::LogLogSlope(ts, spaces));
  std::cout << "fitted log-log slope of space vs T — sampling sets only "
               "(no-oracle): "
            << Table::Num(bench::LogLogSlope(ts, abl_spaces), 3)
            << "   [paper: -0.25]\n"
            << "  with the oracle state (full algorithm): "
            << Table::Num(bench::LogLogSlope(ts, spaces), 3)
            << "   [the buffered H_f observations are the implementation's "
               "simulation concession; see DESIGN.md]\n";

  // Heavy-edge instance: a theta gadget puts one edge in half of all
  // 4-cycles (t(spine) = 2k ≫ η√T). The oracle classifies it heavy and
  // counts its cycles through the low-variance A1 term; the no-oracle
  // estimator counts them through correlated A0 detections (they all
  // switch on the spine's S0 membership), blowing up the error tails.
  {
    Rng gen(2);
    EdgeList graph = PlantTheta(ErdosRenyiGnm(n, m / 2, gen),
                                quick ? 500 : 1200, gen);
    const Graph g(graph);
    const double t = static_cast<double>(CountFourCycles(g));
    Table heavy({"algorithm", "med.err", "p90.err"});
    for (const bool use_oracle : {true, false}) {
      auto stats = bench::RunTrials(trials, t, [&](int trial) {
        Rng rng(400 + trial);
        EdgeStream stream = g.edges();
        rng.Shuffle(stream);
        ArbThreePassFourCycleCounter::Params params;
        params.base.epsilon = epsilon;
        params.base.c = 1.0;
        params.base.t_guess = t;
        params.base.seed = 4300 + trial;
        params.num_vertices = g.num_vertices();
        params.eta = 8.0;
        params.use_oracle = use_oracle;
        params.rate_scale = 4.0 * epsilon * epsilon /
                            std::log2(double(g.num_vertices()) + 2.0);
        const Estimate e = CountFourCyclesArbThreePass(stream, params);
        return std::make_pair(e.value, e.space_words);
      });
      heavy.AddRow({use_oracle ? "mv20-3pass" : "ablation:no-oracle",
                    Table::Pct(stats.rel_error.median),
                    Table::Pct(stats.rel_error.p90)});
    }
    heavy.set_title("theta heavy-edge instance (T=" +
                    std::to_string(static_cast<std::int64_t>(t)) + ")");
    heavy.Print(std::cout);
    ctx.RecordTable("theta_heavy_edge", heavy);
  }
  return ctx.Finish();
}

}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
