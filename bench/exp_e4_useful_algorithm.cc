// E4 — Lemma 3.1: the "Useful Algorithm" weight estimator. Sweeps the true
// weight W across the M scale and verifies the three guarantees:
//   a. W <= M     =>  Ŵ = W ± εM,
//   b. Ŵ < M      =>  W <= 2M   (few "Ŵ < M" events when W >= 2M),
//   c. Ŵ >= M     =>  W >= M/2  (few "Ŵ >= M" events when W <= M/2).
// Also reports the space split (R-marks vs heavy counters) as the heavy
// mass grows.

#include <iostream>
#include <unordered_set>

#include "bench/bench_common.h"
#include "core/useful_algorithm.h"
#include "hash/rng.h"

namespace cyclestream {
namespace {

struct WeightedEdge {
  std::uint64_t a, b;
  double w;
};

struct RunResult {
  double estimate = 0;
  std::size_t space = 0;
  std::size_t heavy_tracked = 0;
};

RunResult RunOnce(const std::vector<WeightedEdge>& edges, std::uint64_t n,
                  double p, double m_cap, std::uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<std::uint64_t> r1, r2;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (rng.Bernoulli(p)) r1.insert(v);
    if (rng.Bernoulli(p)) r2.insert(v);
  }
  std::vector<std::vector<WeightedEdge>> adj(n);
  for (const auto& e : edges) {
    adj[e.a].push_back(e);
    adj[e.b].push_back(e);
  }
  UsefulAlgorithm useful(UsefulAlgorithm::Config{p, m_cap});
  for (std::uint64_t v = 0; v < n; ++v) {
    std::vector<UsefulAlgorithm::IncidentEdge> revealed;
    for (const auto& e : adj[v]) {
      const std::uint64_t u = e.a == v ? e.b : e.a;
      const bool in1 = r1.count(u) > 0, in2 = r2.count(u) > 0;
      if (in1 || in2) {
        revealed.push_back(UsefulAlgorithm::IncidentEdge{u, e.w, in1, in2});
      }
    }
    useful.OnVertex(v, r1.count(v) > 0, r2.count(v) > 0, revealed);
  }
  return {useful.Estimate(), useful.SpaceWords(), useful.NumTrackedHeavy()};
}

// Workload: `light_edges` unit edges spread uniformly + `hubs` vertices
// each with `hub_degree` incident unit edges (heavy vertices).
std::vector<WeightedEdge> MakeWorkload(std::uint64_t n, int light_edges,
                                       int hubs, int hub_degree,
                                       std::uint64_t seed) {
  Rng gen(seed);
  std::vector<WeightedEdge> edges;
  for (int i = 0; i < light_edges; ++i) {
    const std::uint64_t a = gen.UniformInt(n), b = gen.UniformInt(n);
    if (a != b) edges.push_back({a, b, 1.0});
  }
  for (int h = 0; h < hubs; ++h) {
    const std::uint64_t hub = gen.UniformInt(n);
    for (int d = 0; d < hub_degree; ++d) {
      const std::uint64_t other = gen.UniformInt(n);
      if (other != hub) edges.push_back({hub, other, 1.0});
    }
  }
  return edges;
}

}  // namespace

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  bench::ExperimentContext ctx("E4", flags);
  const bool quick = flags.GetBool("quick", false);
  const int trials = static_cast<int>(flags.GetInt("trials", quick ? 20 : 50));
  const double p = flags.GetDouble("p", 0.5);
  const std::uint64_t n = 600;

  bench::PrintHeader(
      "E4: the Useful Algorithm (Lemma 3.1)",
      "W<=M => est = W +- eps*M; est<M => W<=2M; est>=M => W>=M/2",
      "synthetic weighted vertex streams, light edges + planted hubs, "
      "sweeping W/M");

  Table table({"W/M", "hubs", "med |est-W|/M", "p90 |est-W|/M",
               "b-violations", "c-violations", "med heavy tracked"});
  const double m_cap = 500.0;
  struct Config {
    double target_ratio;
    int hubs;
  };
  for (const Config& config :
       {Config{0.1, 0}, Config{0.5, 2}, Config{1.0, 4}, Config{2.0, 8},
        Config{4.0, 8}}) {
    const int hub_degree = 60;
    const int light =
        std::max(0, static_cast<int>(config.target_ratio * m_cap) -
                        config.hubs * hub_degree);
    const auto edges = MakeWorkload(n, light, config.hubs, hub_degree, 99);
    double w = 0;
    for (const auto& e : edges) w += e.w;

    const auto results = bench::CollectTrials(trials, [&](int t) {
      return RunOnce(edges, n, p, m_cap, 1000 + t);
    });
    std::vector<double> devs, tracked;
    int b_viol = 0, c_viol = 0;
    for (const RunResult& r : results) {
      devs.push_back(std::abs(r.estimate - w) / m_cap);
      tracked.push_back(static_cast<double>(r.heavy_tracked));
      if (r.estimate < m_cap && w > 2 * m_cap) ++b_viol;
      if (r.estimate >= m_cap && w < m_cap / 2) ++c_viol;
    }
    const Summary dev = Summarize(std::move(devs));
    table.AddRow({Table::Num(w / m_cap, 2), Table::Int(config.hubs),
                  Table::Num(dev.median, 3), Table::Num(dev.p90, 3),
                  Table::Int(b_viol), Table::Int(c_viol),
                  Table::Num(Summarize(std::move(tracked)).median, 1)});
  }
  table.Print(std::cout);
  std::cout << "(b/c-violations are counts out of " << trials
            << " trials; the additive-error rows are only meaningful for "
               "W/M <= 1)\n";
  ctx.RecordTable("guarantees", table);
  return ctx.Finish();
}

}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
