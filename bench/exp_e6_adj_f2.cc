// E6 — Theorem 4.3a: one-pass adjacency-list 4-cycle counting via the
// F₂/F₁ reduction on the wedge vector. The claim: polylog space once
// T = Ω(n²/ε²). We sweep the density (hence T/n²) and report accuracy, the
// F₂/F₁ split, and space — which, unlike every other algorithm here, does
// not grow with m at all once the pair sample is fixed.

#include <iostream>

#include "bench/bench_common.h"
#include "core/adj_f2_counter.h"
#include "gen/generators.h"

namespace cyclestream {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  bench::ExperimentContext ctx("E6", flags);
  const bool quick = flags.GetBool("quick", false);
  const int trials = static_cast<int>(flags.GetInt("trials", quick ? 5 : 9));
  const double epsilon = flags.GetDouble("epsilon", 0.15);

  bench::PrintHeader(
      "E6: one-pass 4-cycle counting via F2/F1 (Theorem 4.3a)",
      "(1+eps) in O~(eps^-4 n^4/T^2) space; polylog once T = Omega(n^2)",
      "G(n,p) densities sweeping T/n^2; complete bipartite as the extreme");

  Table table({"graph", "n", "T", "T/n^2", "med.err", "p90.err",
               "med.space(w)", "graph(w)"});
  struct Config {
    std::string name;
    VertexId n;
    double p;
  };
  const VertexId base_n = quick ? 150 : 240;
  for (const Config& config :
       {Config{"gnp-sparse", base_n, 0.08}, Config{"gnp-mid", base_n, 0.18},
        Config{"gnp-dense", base_n, 0.35}}) {
    Rng gen(1);
    const Graph g(ErdosRenyiGnp(config.n, config.p, gen));
    const double t = static_cast<double>(CountFourCycles(g));
    auto stats = bench::RunTrials(trials, t, [&](int trial) {
      Rng rng(100 + trial);
      const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
      AdjF2FourCycleCounter::Params params;
      params.base.epsilon = epsilon;
      params.base.t_guess = std::max(1.0, t);
      params.base.seed = 6000 + trial;
      params.num_vertices = g.num_vertices();
      params.copies_per_group = quick ? 64 : 128;
      const Estimate e = CountFourCyclesAdjF2(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    const double n2 = static_cast<double>(g.num_vertices()) *
                      g.num_vertices();
    table.AddRow({config.name, Table::Int(g.num_vertices()),
                  Table::Int(static_cast<std::int64_t>(t)),
                  Table::Num(t / n2, 2), Table::Pct(stats.rel_error.median),
                  Table::Pct(stats.rel_error.p90),
                  Table::Int(static_cast<std::int64_t>(stats.space_words.median)),
                  Table::Int(2 * static_cast<std::int64_t>(g.num_edges()))});
  }
  {
    // Complete bipartite: T = C(a,2)C(b,2) = Θ(n⁴) — deep in regime.
    const VertexId side = quick ? 60 : 90;
    const Graph g(CompleteBipartite(side, side));
    const double t = static_cast<double>(CountFourCycles(g));
    auto stats = bench::RunTrials(trials, t, [&](int trial) {
      Rng rng(200 + trial);
      const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
      AdjF2FourCycleCounter::Params params;
      params.base.epsilon = epsilon;
      params.base.t_guess = t;
      params.base.seed = 6100 + trial;
      params.num_vertices = g.num_vertices();
      params.copies_per_group = quick ? 64 : 128;
      const Estimate e = CountFourCyclesAdjF2(stream, params);
      return std::make_pair(e.value, e.space_words);
    });
    const double n2 = static_cast<double>(g.num_vertices()) *
                      g.num_vertices();
    table.AddRow({"complete-bip", Table::Int(g.num_vertices()),
                  Table::Int(static_cast<std::int64_t>(t)),
                  Table::Num(t / n2, 2), Table::Pct(stats.rel_error.median),
                  Table::Pct(stats.rel_error.p90),
                  Table::Int(static_cast<std::int64_t>(stats.space_words.median)),
                  Table::Int(2 * static_cast<std::int64_t>(g.num_edges()))});
  }
  table.Print(std::cout);
  std::cout << "(expected shape: error shrinks as T/n^2 grows — the "
               "Lemma 4.4 slack F1(z) <= n^2/eps becomes negligible)\n";
  ctx.RecordTable("results", table);
  return ctx.Finish();
}

}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
