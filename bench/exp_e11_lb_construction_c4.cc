// E11 — Theorem 5.8: the 4-cycle lower-bound construction (reduction from
// set disjointness). Verifies the gadget (0 vs C(k,2) cycles), and shows
// the empirical space-vs-success cliff it predicts: a sampling tester needs
// both star centers' shared-group edges — Θ(m/√T) of the stream — before it
// can see any cycle.

#include <iostream>

#include "baselines/naive_sampling.h"
#include "bench/bench_common.h"
#include "core/arb_distinguisher.h"
#include "gen/lower_bound.h"

namespace cyclestream {

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  bench::ExperimentContext ctx("E11", flags);
  const bool quick = flags.GetBool("quick", false);
  const int trials = static_cast<int>(flags.GetInt("trials", quick ? 30 : 80));

  bench::PrintHeader(
      "E11: 4-cycle lower-bound construction (Theorem 5.8)",
      "distinguishing 0 vs T 4-cycles needs Omega(m/sqrt(T)) space in any "
      "constant number of passes",
      "two-star disjointness gadget, sweeping k (T = C(k,2))");

  // (a) Gadget correctness.
  Table build({"groups", "k", "T expected", "C4(intersecting)",
               "C4(disjoint)", "m"});
  for (const std::uint32_t k : {4u, 8u, 16u, 32u}) {
    Rng rng(10 + k);
    const auto yes = MakeFourCycleLowerBoundGadget(quick ? 100 : 300, k, 0.5,
                                                   true, rng);
    Rng rng2(20 + k);
    const auto no = MakeFourCycleLowerBoundGadget(quick ? 100 : 300, k, 0.5,
                                                  false, rng2);
    build.AddRow(
        {Table::Int(quick ? 100 : 300), Table::Int(k),
         Table::Int(static_cast<std::int64_t>(yes.expected_four_cycles)),
         Table::Int(static_cast<std::int64_t>(CountFourCycles(Graph(yes.graph)))),
         Table::Int(static_cast<std::int64_t>(CountFourCycles(Graph(no.graph)))),
         Table::Int(static_cast<std::int64_t>(yes.graph.num_edges()))});
  }
  build.set_title("(a) gadget correctness");
  build.Print(std::cout);

  // (b) Space cliff for the (theorem-matching) two-pass distinguisher run
  // with a deliberately sub-threshold c, vs at-threshold c.
  const std::uint32_t k = quick ? 12 : 24;
  const std::uint32_t groups = quick ? 150 : 400;
  Table cliff({"c (sample const)", "hit%", "false+%", "med.space(w)"});
  for (const double c : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    struct Outcome {
      bool hit = false;
      bool false_pos = false;
      std::size_t space = 0;
    };
    const auto outcomes = bench::CollectTrials(trials, [&](int trial) {
      Rng rng(100 + trial);
      const auto yes = MakeFourCycleLowerBoundGadget(groups, k, 0.5, true, rng);
      Rng rng2(200 + trial);
      const auto no =
          MakeFourCycleLowerBoundGadget(groups, k, 0.5, false, rng2);
      ArbTwoPassDistinguisher::Params params;
      params.base.t_guess =
          static_cast<double>(std::max<std::uint64_t>(1, yes.expected_four_cycles));
      params.base.c = c;
      params.base.seed = 300 + trial;
      params.num_vertices = yes.graph.num_vertices();
      Rng order(400 + trial);
      EdgeStream sy = yes.graph.edges();
      order.Shuffle(sy);
      std::size_t space = 0;
      const bool hit = DistinguishFourCycles(sy, params, &space);
      EdgeStream sn = no.graph.edges();
      order.Shuffle(sn);
      const bool fp = DistinguishFourCycles(sn, params);
      return Outcome{hit, fp, space};
    });
    int hits = 0, false_pos = 0;
    std::vector<double> spaces;
    for (const Outcome& o : outcomes) {
      hits += o.hit ? 1 : 0;
      false_pos += o.false_pos ? 1 : 0;
      spaces.push_back(static_cast<double>(o.space));
    }
    cliff.AddRow({Table::Num(c, 2), Table::Pct(double(hits) / trials),
                  Table::Pct(double(false_pos) / trials),
                  Table::Int(static_cast<std::int64_t>(
                      Summarize(std::move(spaces)).median))});
  }
  cliff.set_title("(b) space/success cliff on the gadget (k=" +
                  std::to_string(k) + ")");
  cliff.Print(std::cout);
  std::cout << "(expected shape: success climbs with the sampling constant "
               "— i.e. with space — exactly the trade-off the Omega(m/sqrt(T)) "
               "bound says is unavoidable)\n";
  ctx.RecordTable("gadget_correctness", build);
  ctx.RecordTable("space_cliff", cliff);
  return ctx.Finish();
}

}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
